//! The named performance suites behind `characterize bench`.
//!
//! Each suite wraps one of the repo's hot paths in a [`dram_perf::Bench`]
//! closure: the raw chip command loop, an end-to-end characterization,
//! the fleet engine (serial and parallel over the same jobs), trace
//! record/replay/decode (serial and indexed-parallel), a trace-lake
//! query, and the telemetry snapshot renderer. Every
//! workload runs on the small test profiles so a full run finishes in
//! seconds; the point is relative timing between runs of the same
//! machine, not absolute numbers.
//!
//! Suite names are the stable keys in `BENCH_*.json` — renaming one
//! reads as a `MISSING` + `new` pair to the regression gate, so treat
//! names as schema.

use dram_perf::Bench;
use dram_sim::{ChipProfile, Command, DramChip, Time};
use dramscope_core::dossier::{characterize_instrumented, CharacterizeOptions};
use dramscope_core::fleet::{self, FleetConfig, FleetJob};
use dramscope_core::shard::{self, ShardConfig};
use dramscope_core::trace_run;

/// The probe options every suite uses: shallow scan, interior probe
/// range, no swizzle recovery — the cheapest characterization that still
/// exercises every phase.
fn small_opts() -> CharacterizeOptions {
    CharacterizeOptions {
        scan_rows: 129,
        with_swizzle: false,
        probe_range: (44, 60),
        retention_wait: Time::from_ms(120_000),
    }
}

/// The fleet jobs the `fleet_serial` / `fleet_parallel` suites run: the
/// same four small-profile population the fleet engine's own tests use.
fn small_fleet_jobs() -> Vec<FleetJob> {
    let opts = small_opts();
    vec![
        FleetJob {
            profile: ChipProfile::test_small(),
            opts,
        },
        FleetJob {
            profile: ChipProfile::test_small_coupled(),
            opts,
        },
        FleetJob {
            profile: ChipProfile::test_small().with_trr(2),
            opts,
        },
        FleetJob {
            profile: ChipProfile::test_small().with_on_die_ecc(),
            opts,
        },
    ]
}

/// The seed every suite derives from, so runs are comparable.
const SEED: u64 = 0xbe9c;

/// The stable suite names, in the order [`suites`] builds them.
pub const SUITE_NAMES: [&str; 12] = [
    "chip_command_loop",
    "characterize_small",
    "characterize_sharded",
    "fleet_serial",
    "fleet_parallel",
    "trace_record",
    "trace_replay",
    "trace_replay_fast",
    "trace_decode",
    "trace_decode_parallel",
    "trace_query",
    "metrics_snapshot",
];

/// Builds every named suite. The setup work (one recorded
/// characterization shared by the replay/decode/snapshot suites) runs
/// here, outside any timed region.
///
/// # Panics
///
/// If the setup characterization of `test_small` fails — that is a
/// simulator bug, not a runtime condition a caller can handle.
pub fn suites() -> Vec<Bench> {
    // Shared setup: one recorded run feeds trace_replay, trace_decode,
    // and metrics_snapshot.
    let (_, _, trace, registry) = trace_run::record_characterization_instrumented(
        &ChipProfile::test_small(),
        SEED,
        small_opts(),
    )
    .expect("characterizing the small test profile cannot fail");
    let trace_bytes = trace.to_bytes();
    let indexed_bytes = trace.to_bytes_indexed();

    vec![
        chip_command_loop(),
        characterize_small(),
        characterize_sharded(),
        fleet_serial(),
        fleet_parallel(),
        trace_record(),
        trace_replay(trace.clone()),
        trace_replay_fast(trace.clone()),
        trace_decode(trace_bytes),
        trace_decode_parallel(indexed_bytes.clone()),
        trace_query(indexed_bytes),
        metrics_snapshot(registry),
    ]
}

/// Raw command-issue throughput: ACT → RD → PRE over every row of a
/// bank at legal DDR4 spacing on a bare small chip — the tightest loop
/// in the simulator, and the reproduction's analogue of DRAM Bender's
/// headline quantity (how fast commands reach the device). The full
/// 2048-row sweep keeps one iteration in the milliseconds, where the
/// median is stable enough to gate on.
fn chip_command_loop() -> Bench {
    let mut chip = DramChip::new(ChipProfile::test_small(), SEED);
    let rows = chip.profile().rows_per_bank;
    let mut at = chip.now();
    Bench::new("chip_command_loop", move || {
        let t = *chip.timing();
        let mut issued = 0u64;
        for row in 0..rows {
            at += t.trp;
            let sequence = [
                (Command::Activate { bank: 0, row }, t.trcd),
                (
                    Command::Read { bank: 0, col: 0 },
                    t.tras
                        .checked_sub(t.trcd)
                        .expect("tRAS covers tRCD in every profile"),
                ),
                (Command::Precharge { bank: 0 }, Time::ZERO),
            ];
            for (cmd, advance) in sequence {
                let data = chip
                    .issue(cmd, at)
                    .expect("legally spaced command sequence is accepted");
                std::hint::black_box(data);
                issued += 1;
                at += advance;
            }
        }
        issued
    })
}

/// One full (small) characterization, end to end: every probe phase on a
/// fresh chip per iteration.
fn characterize_small() -> Bench {
    Bench::new("characterize_small", move || {
        let (dossier, stats, _) =
            characterize_instrumented(&ChipProfile::test_small(), SEED, small_opts(), None)
                .expect("characterizing the small test profile cannot fail");
        std::hint::black_box(dossier);
        stats.commands()
    })
}

/// Bank-sharded characterization of the 4-bank HBM2 test profile on the
/// machine's available parallelism — one shard per bank, merged in bank
/// order. Read against `characterize_small` (one bank's worth of work)
/// to see the intra-device speedup the sharded path buys.
fn characterize_sharded() -> Bench {
    Bench::new("characterize_sharded", move || {
        let report = shard::characterize_sharded(
            &ChipProfile::test_small_hbm2(),
            SEED,
            small_opts(),
            ShardConfig::default(),
        );
        assert!(report.all_ok(), "{}", report.table());
        let commands = report.results.iter().map(|r| r.stats.commands()).sum();
        std::hint::black_box(report);
        commands
    })
}

/// The four-job fleet, strictly serial — the baseline the parallel
/// suite's median is compared against to read the machine's speedup.
fn fleet_serial() -> Bench {
    let jobs = small_fleet_jobs();
    Bench::new("fleet_serial", move || {
        let report = fleet::run_fleet_serial(&jobs, SEED);
        let commands = report.results.iter().map(|r| r.stats.commands()).sum();
        std::hint::black_box(report);
        commands
    })
}

/// The same four-job fleet on the machine's available parallelism.
fn fleet_parallel() -> Bench {
    let jobs = small_fleet_jobs();
    Bench::new("fleet_parallel", move || {
        let report = fleet::run_fleet(&jobs, SEED, FleetConfig::default());
        let commands = report.results.iter().map(|r| r.stats.commands()).sum();
        std::hint::black_box(report);
        commands
    })
}

/// Characterization with the trace recorder attached — measures the
/// capture overhead relative to `characterize_small`.
fn trace_record() -> Bench {
    Bench::new("trace_record", move || {
        let (_, stats, trace, _) = trace_run::record_characterization_instrumented(
            &ChipProfile::test_small(),
            SEED,
            small_opts(),
        )
        .expect("recording the small test profile cannot fail");
        std::hint::black_box(trace);
        stats.commands()
    })
}

/// Verified deterministic replay of a recorded characterization.
fn trace_replay(trace: dram_trace::Trace) -> Bench {
    Bench::new("trace_replay", move || {
        let (_, stats, _) = trace_run::replay_characterization_instrumented(&trace)
            .expect("replaying a just-recorded trace cannot fail");
        stats.commands()
    })
}

/// Trusted fast-path replay of the same recorded characterization:
/// the identical drive loop minus the per-event outcome comparison.
/// Read against `trace_replay` to see what verification costs.
fn trace_replay_fast(trace: dram_trace::Trace) -> Bench {
    let profile = ChipProfile::test_small();
    Bench::new("trace_replay_fast", move || {
        let stats = dram_trace::replay_on_chip_trusted(&trace, &profile)
            .expect("trusted replay of a just-recorded trace cannot fail");
        stats.commands
    })
}

/// Decoding the binary trace format (bytes → events), no simulation.
fn trace_decode(bytes: Vec<u8>) -> Bench {
    Bench::new("trace_decode", move || {
        let trace = dram_trace::Trace::from_bytes(&bytes)
            .expect("decoding a just-encoded trace cannot fail");
        let events = trace.events.len() as u64;
        std::hint::black_box(trace);
        events
    })
}

/// Parallel per-segment decode of the v2 indexed container on the
/// machine's available parallelism. Read against `trace_decode` (the
/// serial whole-stream decode of the same events) to see what the
/// segment index buys; on a one-core host parity is the expectation.
fn trace_decode_parallel(bytes: Vec<u8>) -> Bench {
    Bench::new("trace_decode_parallel", move || {
        let indexed = dram_trace::IndexedTrace::from_bytes(&bytes)
            .expect("opening a just-encoded container cannot fail");
        let trace = indexed
            .decode_parallel(0)
            .expect("decoding a just-encoded container cannot fail");
        let events = trace.events.len() as u64;
        std::hint::black_box(trace);
        events
    })
}

/// A trace-lake query over the indexed container: open, prune by
/// segment metadata, decode only the matching segments, count matches.
/// "Commands" counts the events the query actually matched, so a silent
/// predicate regression shows up as a work-count change, not just a
/// timing one.
fn trace_query(bytes: Vec<u8>) -> Bench {
    let query = dram_trace::Query {
        banks: Some(vec![0]),
        mnemonics: Some(vec!["act".into()]),
        marker_prefix: Some("phase:".into()),
        ..dram_trace::Query::default()
    };
    Bench::new("trace_query", move || {
        let report = dram_trace::query_bytes("bench.trace", &bytes, &query)
            .expect("querying a just-encoded container cannot fail");
        assert!(report.is_match(), "bench query matched nothing");
        std::hint::black_box(report).matched
    })
}

/// Rendering a populated registry to its byte-stable JSON-lines
/// snapshot; "commands" here counts snapshot lines rendered.
fn metrics_snapshot(registry: dram_telemetry::Registry) -> Bench {
    Bench::new("metrics_snapshot", move || {
        let rendered = registry.to_json_lines();
        let lines = rendered.lines().count() as u64;
        std::hint::black_box(rendered);
        lines
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_perf::{run_all, BenchConfig};

    #[test]
    fn suite_names_match_the_built_suites_in_order() {
        let names: Vec<String> = suites().into_iter().map(|b| b.name).collect();
        assert_eq!(names, SUITE_NAMES);
    }

    #[test]
    fn every_suite_runs_under_the_smoke_config_and_reports_work() {
        let mut benches = suites();
        let results = run_all(&mut benches, BenchConfig::smoke());
        assert_eq!(results.len(), SUITE_NAMES.len());
        for r in &results {
            assert!(r.commands > 0, "{} reported no work", r.name);
            assert_eq!(r.stats.n, 1, "{}", r.name);
        }
        // The command-loop suite issues exactly 3 commands per row over
        // the whole bank.
        let loop_result = results
            .iter()
            .find(|r| r.name == "chip_command_loop")
            .unwrap();
        let rows = u64::from(ChipProfile::test_small().rows_per_bank);
        assert_eq!(loop_result.commands, rows * 3);
    }
}
