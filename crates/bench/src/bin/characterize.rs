//! Full black-box characterization: prints the dossier the toolkit
//! assembles from RowCopy, retention, AIB, power, TRR, and ECC probing.
//! Run with `--release`:
//!
//! ```text
//! cargo run --release -p dramscope-bench --bin characterize [profile]
//! cargo run --release -p dramscope-bench --bin characterize fleet [--serial] [--sharded] [--workers N]
//! cargo run --release -p dramscope-bench --bin characterize sharded [profile] [--shards N] [--serial] [--seed N]
//! cargo run --release -p dramscope-bench --bin characterize record <profile> [--seed N] [--out FILE] [--v1] [--sharded [--shards N]]
//! cargo run --release -p dramscope-bench --bin characterize replay <FILE> [--bench N]
//! cargo run --release -p dramscope-bench --bin characterize diff <A> <B> [--segment SPEC] [--bank N]
//! cargo run --release -p dramscope-bench --bin characterize dump <FILE> [--segment SPEC] [--bank N]
//! cargo run --release -p dramscope-bench --bin characterize stats <FILE> [--json|--csv] [--segment SPEC] [--bank N]
//! cargo run --release -p dramscope-bench --bin characterize index <FILE> [--out FILE]
//! cargo run --release -p dramscope-bench --bin characterize query <FILE|DIR> [--bank LIST] \
//!     [--cmd LIST] [--marker PREFIX] [--from-ps N] [--to-ps N] \
//!     [--min-count N] [--max-count N] [--json|--csv]
//! cargo run --release -p dramscope-bench --bin characterize bench [--save FILE] \
//!     [--baseline FILE] [--gate PCT] [--warmup N] [--iters N] [--only a,b] \
//!     [--profile] [--flame FILE] [--profile-json FILE]
//! cargo run --release -p dramscope-bench --bin characterize serve [--workers N] [--socket PATH] [--journal FILE] [--trace-dir PATH] [--cache-dir PATH] [--cache-max-entries N] [--cache-max-bytes N] [--serial]
//! cargo run --release -p dramscope-bench --bin characterize events <journal> [--sev LEVEL] \
//!     [--job ID] [--kind PREFIX] [--since-seq N] [--until-seq N] [--tail N] [--stable] [--quiet]
//! ```
//!
//! Exit codes are uniform across subcommands: usage errors (bad flags,
//! unknown names, missing operands) exit 2, runtime failures exit 1.
//!
//! `serve` runs the `dramscoped` characterization daemon in-process:
//! JSON-lines requests over stdin/stdout (or a unix socket), in-flight
//! dedup, and the content-addressed dossier cache — see the
//! `dramscope-service` crate.
//!
//! Every run/record/replay/fleet invocation also accepts the telemetry
//! flags `--metrics FILE` (write the JSON-lines metrics snapshot of the
//! run to `FILE`) and `--quiet` (suppress the dossier body, run report,
//! and telemetry footer, leaving only the one-line confirmations).
//!
//! The long-running modes (profile runs, `fleet`, `sharded`, `serve`)
//! additionally accept `--journal FILE`: job lifecycle events
//! (`job.queued` / `job.started` / `job.finished` / `job.panicked`),
//! simulator clock anomalies, and — under `serve` — the daemon's
//! connection, request, and cache events append to a rotating JSON-lines
//! journal (`dram-obs`). The `events` subcommand reads such a journal
//! back: it prints matching event lines (filtered by `--sev`, `--job`,
//! `--kind` prefix, or a `--since-seq`/`--until-seq` sequence window,
//! trimmed to the last `--tail N`; `--stable` renders without wall-clock
//! keys, `--quiet` keeps only the summary), salvages around corrupt
//! lines, and reconstructs the per-job lifecycle — every job's queued /
//! started / finished / panicked counts, and whether they match.
//! `stats` derives the same metrics from a trace file alone — no
//! re-simulation — and renders them as a table (`--csv` for CSV,
//! `--json` for the raw snapshot that `--metrics` writes).
//!
//! `profile` is a preset name like `mfr_a_x4_2016` (default),
//! `mfr_b_x4_2019`, `mfr_c_x8_2016`, or `hbm2`. The special name
//! `fleet` characterizes the whole Table I population in parallel and
//! prints the per-device summary table followed by the JSON-lines run
//! report; `--serial` runs the same jobs one at a time (the determinism
//! / speedup baseline), `--workers N` pins the worker count, and
//! `--sharded` switches to the two-level scheduler: every
//! `(profile, bank)` pair becomes one task on the shared pool.
//!
//! `sharded` characterizes every bank of ONE device concurrently, one
//! shard per bank, and prints the per-bank table, the run summary, and
//! the merged sharded-dossier digest. `--shards N` pins the worker
//! count (0 = machine parallelism, capped at the bank count) and
//! `--serial` runs the byte-identical one-bank-at-a-time reference —
//! the digest printed by both must match for any shard count.
//!
//! The trace subcommands drive the golden-trace subsystem (`dram-trace`):
//! `record` characterizes while capturing every command of the primary
//! testbed into a binary trace (`--sharded` records the bank-sharded
//! flow instead — one segment per bank, concatenated in bank order);
//! `replay` re-runs the characterization
//! from the trace alone (sharded traces are detected by their
//! `shard_banks` meta and replayed bank by bank), verifying the command
//! stream and the dossier
//! digest reproduce bit-for-bit (with `--bench N` it additionally replays
//! the raw command stream `N` times on bare chips and reports
//! commands/second); `diff` compares two traces structurally; `dump`
//! renders a trace as text. The small CI profiles `test_small`,
//! `test_small_interleaved`, and `test_small_coupled` are accepted by
//! `record` alongside the Table I presets.
//!
//! `record` writes the v2 indexed container by default: the v1 byte
//! stream unchanged, plus a segment index footer keyed by the
//! `phase:`/`span:`/`shard:bank=` markers (pass `--v1` for the bare v1
//! stream). `index <FILE>` upgrades an existing trace to
//! `<name>.v2.trace` and prints its segment table. Every trace-reading
//! subcommand accepts either version. `stats`, `dump`, and `diff` take
//! `--segment SPEC` (a segment number, or a label prefix like
//! `phase:hammer`) and `--bank N` to restrict themselves to matching
//! segments — on an indexed trace only those segments are decoded; on a
//! v1 trace the same segments are synthesized in memory from the marker
//! stream, so the output is identical, just without the seek savings.
//! `query` evaluates a predicate (time range in picoseconds, bank list,
//! command mnemonics, marker prefix, min/max matched count) over one
//! trace or every `*.trace` in a directory, pruning non-matching
//! segments by their index metadata before decoding; it exits 1 when
//! nothing matches, so shell scripts can branch on it.
//!
//! `bench` runs the named performance suites
//! (`dramscope_bench::perf_suites`) through the `dram-perf` harness:
//! `--save FILE` writes a `BENCH_*.json` snapshot, `--baseline FILE`
//! gates the run against a previous snapshot (`--gate PCT` sets the
//! allowed median growth, default 20; the process exits 1 on
//! regression), `--warmup`/`--iters` size the run, `--only a,b` selects
//! suites by name, and `--profile` (`--flame FILE` / `--profile-json
//! FILE` for collapsed-stack and JSON output) additionally profiles one
//! small characterization into a hierarchical wall-clock span tree.

use dram_obs::{
    scan_journal, AnomalySink, Event, EventBus, EventDraft, JournalConfig, JournalWriter, Severity,
};
use dram_sim::ChipProfile;
use dram_telemetry::Registry;
use dram_trace::{
    decode_container, diff_traces, trace_metrics, IndexedTrace, Query, Trace, SEGMENT_MNEMONICS,
};
use dramscope_core::dossier::{characterize_instrumented, CharacterizeOptions};
use dramscope_core::fleet::{self, FleetConfig};
use dramscope_core::report::Table;
use dramscope_core::shard::{self, ShardConfig};
use dramscope_core::trace_run;
use dramscope_service::profiles;
use std::fmt;

/// A command-line usage error: bad flags, unknown names, missing
/// operands. `main` maps these to exit code 2, runtime failures to 1 —
/// the same convention in every subcommand.
#[derive(Debug)]
struct UsageError(String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

fn usage<T>(message: impl Into<String>) -> Result<T, Box<dyn std::error::Error>> {
    Err(Box::new(UsageError(message.into())))
}

/// Small-profile options for the profiled bench run, via the shared
/// name table so CLI and daemon agree on the canonical values.
fn small_opts(scan_rows: u32) -> CharacterizeOptions {
    let (_, mut opts) = profiles::named_job("test_small").expect("test_small is a known profile");
    opts.scan_rows = scan_rows;
    opts
}

/// The unknown-profile usage message.
fn unknown_profile(name: &str) -> Box<dyn std::error::Error> {
    Box::new(UsageError(format!(
        "unknown profile '{name}' (try one of: {})",
        profiles::known_names().join(", ")
    )))
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<Option<T>, Box<dyn std::error::Error>>
where
    T::Err: std::error::Error + 'static,
{
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            let Some(raw) = args.get(i + 1) else {
                return usage(format!("{flag} needs a value"));
            };
            match raw.parse::<T>() {
                Ok(v) => Ok(Some(v)),
                Err(e) => usage(format!("invalid {flag} value '{raw}': {e}")),
            }
        }
    }
}

fn load_trace(path: &str) -> Result<Trace, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    decode_container(&bytes).map_err(|e| format!("{path}: {e}").into())
}

/// The `--segment SPEC` / `--bank N` filters shared by `stats`, `dump`,
/// and `diff`. SPEC is a segment number or a label prefix; `--bank`
/// keeps only events addressing that bank, skipping segments whose bank
/// set excludes it without decoding them (on indexed traces).
struct SegmentFilter {
    segment: Option<String>,
    bank: Option<u32>,
}

impl SegmentFilter {
    fn from_args(args: &[String]) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(SegmentFilter {
            segment: parse_flag::<String>(args, "--segment")?,
            bank: parse_flag::<u32>(args, "--bank")?,
        })
    }

    fn is_active(&self) -> bool {
        self.segment.is_some() || self.bank.is_some()
    }

    /// Whether segment `i` (with metadata `seg`) should be decoded.
    fn selects(&self, i: usize, seg: &dram_trace::SegmentMeta) -> bool {
        let by_spec = match &self.segment {
            None => true,
            Some(spec) => spec
                .parse::<usize>()
                .map_or_else(|_| seg.label.starts_with(spec.as_str()), |n| n == i),
        };
        by_spec && self.bank.is_none_or(|b| seg.has_bank(b))
    }

    /// Whether an event inside a selected segment survives the filter.
    fn keeps_event(&self, ev: &dram_trace::TraceEvent) -> bool {
        self.bank
            .is_none_or(|b| dram_trace::index::event_bank(ev) == Some(b))
    }
}

/// Opens a trace container-aware and applies the segment filters,
/// returning the filtered trace plus `(decoded, total)` segment counts.
/// With no filters active this is exactly `load_trace` (every event,
/// decoded via the index when one is present).
fn load_filtered_trace(
    path: &str,
    filter: &SegmentFilter,
) -> Result<(Trace, usize, usize), Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let indexed = IndexedTrace::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let total = indexed.segments().len();
    if !filter.is_active() {
        let trace = indexed.decode_all().map_err(|e| format!("{path}: {e}"))?;
        return Ok((trace, total, total));
    }
    let mut events = Vec::new();
    let mut decoded = 0usize;
    for i in 0..total {
        if !filter.selects(i, &indexed.segments()[i]) {
            continue;
        }
        decoded += 1;
        let segment = indexed
            .decode_segment(i)
            .map_err(|e| format!("{path}: {e}"))?;
        events.extend(segment.into_iter().filter(|ev| filter.keeps_event(ev)));
    }
    let trace = Trace {
        header: indexed.header().clone(),
        events,
    };
    Ok((trace, decoded, total))
}

/// Telemetry flags accepted by every mode that produces a metrics
/// registry: `--metrics FILE` writes the JSON-lines snapshot, `--quiet`
/// suppresses the human-readable output (dossier, run report, footer).
struct Telemetry {
    quiet: bool,
    metrics_path: Option<String>,
}

impl Telemetry {
    fn from_args(args: &[String]) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(Telemetry {
            quiet: args.iter().any(|a| a == "--quiet"),
            metrics_path: parse_flag::<String>(args, "--metrics")?,
        })
    }

    /// Writes the snapshot (if requested) and prints the footer (unless
    /// quiet).
    fn emit(&self, reg: &Registry) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(path) = &self.metrics_path {
            std::fs::write(path, reg.to_json_lines())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if !self.quiet {
            println!("{}", telemetry_footer(reg));
        }
        Ok(())
    }
}

/// The `--journal FILE` flag accepted by the long-running modes: an
/// event bus mirroring every emission to a rotating on-disk JSON-lines
/// journal, readable afterwards with `characterize events FILE`.
struct Journal {
    bus: Option<EventBus>,
}

impl Journal {
    fn from_args(args: &[String]) -> Result<Self, Box<dyn std::error::Error>> {
        let bus = match parse_flag::<String>(args, "--journal")? {
            None => None,
            Some(path) => {
                let writer = JournalWriter::open(path.as_str(), JournalConfig::default())
                    .map_err(|e| format!("cannot open journal: {e}"))?;
                Some(EventBus::with_journal(
                    dram_obs::DEFAULT_RING_CAPACITY,
                    writer,
                ))
            }
        };
        Ok(Journal { bus })
    }

    fn bus(&self) -> Option<&EventBus> {
        self.bus.as_ref()
    }

    /// Flushes the journal and surfaces absorbed write failures once, at
    /// the end of the run (the hot path never fails on journal errors).
    fn finish(&self) -> Result<(), Box<dyn std::error::Error>> {
        let Some(bus) = &self.bus else {
            return Ok(());
        };
        bus.flush().map_err(|e| e.to_string())?;
        match bus.journal_errors() {
            0 => Ok(()),
            n => Err(format!("journal dropped {n} event line(s)").into()),
        }
    }
}

/// One-line human summary of a run's metrics registry.
fn telemetry_footer(reg: &Registry) -> String {
    format!(
        "Telemetry: {} commands ({} rejected), {} read bytes, {} phases, {} spans",
        reg.sum_counters("commands_total"),
        reg.sum_counters("rejects_total"),
        reg.sum_counters("read_data_bytes_total"),
        reg.counters()
            .filter(|(k, _)| k.metric() == "phase_count")
            .count(),
        reg.sum_counters("span_count"),
    )
}

/// Renders a metrics registry as a [`Table`] (the `stats` subcommand).
fn metrics_table(reg: &Registry) -> Table {
    let labels = |labels: &[(String, String)]| {
        labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut t = Table::new(vec!["metric", "labels", "type", "value", "detail"]);
    for (k, v) in reg.counters() {
        t.row(vec![
            k.metric().into(),
            labels(k.labels()),
            "counter".into(),
            v.to_string(),
            String::new(),
        ]);
    }
    for (k, v) in reg.gauges() {
        t.row(vec![
            k.metric().into(),
            labels(k.labels()),
            "gauge".into(),
            v.to_string(),
            String::new(),
        ]);
    }
    for (k, h) in reg.histograms() {
        let detail = match (h.min(), h.max(), h.mean()) {
            (Some(min), Some(max), Some(mean)) => {
                format!("min={min} max={max} mean={mean:.1} sum={}", h.sum())
            }
            _ => "empty".into(),
        };
        t.row(vec![
            k.metric().into(),
            labels(k.labels()),
            "histogram".into(),
            h.count().to_string(),
            detail,
        ]);
    }
    t
}

fn run_stats_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage("stats needs a trace file");
    };
    let filter = SegmentFilter::from_args(args)?;
    let (trace, decoded, total) = load_filtered_trace(path, &filter)?;
    let reg = trace_metrics(&trace);
    let out = if args.iter().any(|a| a == "--json") {
        reg.to_json_lines()
    } else if args.iter().any(|a| a == "--csv") {
        metrics_table(&reg).to_csv()
    } else {
        let scope = if filter.is_active() {
            format!(" [filtered: {decoded} of {total} segment(s)]")
        } else {
            String::new()
        };
        format!(
            "trace metrics for {} (seed {}, {} events){scope}:\n{}{}\n",
            trace.header.profile_label,
            trace.header.seed,
            trace.events.len(),
            metrics_table(&reg),
            telemetry_footer(&reg)
        )
    };
    // Stats output gets piped into `head`/`grep`; a closed stdout is
    // normal termination, not an error.
    use std::io::Write;
    match std::io::stdout().write_all(out.as_bytes()) {
        Err(e) if e.kind() != std::io::ErrorKind::BrokenPipe => Err(e.into()),
        _ => Ok(()),
    }
}

fn print_run_report(stats: &dramscope_core::dossier::RunStats) {
    println!("\nRun report:");
    for p in &stats.phases {
        println!(
            "  {:<10} {:>10.1} ms {:>12} cmds {:>8} flips",
            p.name, p.wall_ms, p.commands, p.bitflips
        );
    }
    println!(
        "  {:<10} {:>10.1} ms {:>12} cmds {:>8} flips",
        "total",
        stats.wall_ms(),
        stats.commands(),
        stats.bitflips()
    );
}

fn run_fleet_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let serial = args.iter().any(|a| a == "--serial");
    let workers = parse_flag::<usize>(args, "--workers")?.unwrap_or(0);
    let tele = Telemetry::from_args(args)?;
    let journal = Journal::from_args(args)?;
    let jobs = fleet::table1_jobs();
    if args.iter().any(|a| a == "--sharded") {
        let report = fleet::run_fleet_sharded_with_events(
            &jobs,
            dramscope_bench::experiments::SEED,
            FleetConfig { workers },
            journal.bus(),
        );
        println!(
            "Sharded fleet characterization — {} profiles, {} (profile, bank) tasks on {} workers, {:.0} ms wall",
            report.profiles.len(),
            report.tasks,
            report.workers,
            report.wall_ms
        );
        if !tele.quiet {
            print!("{}", report.table());
            println!("\nRun summary:");
            println!("{}", report.summary_json());
        }
        tele.emit(&report.merged_metrics())?;
        journal.finish()?;
        if !report.all_ok() {
            std::process::exit(1);
        }
        return Ok(());
    }
    let report = match (serial, journal.bus()) {
        (true, None) => fleet::run_fleet_serial(&jobs, dramscope_bench::experiments::SEED),
        // The journaled serial path runs the events-aware engine pinned
        // to one worker — the same jobs, seeds, and execution order.
        (true, Some(bus)) => fleet::run_fleet_with_events(
            &jobs,
            dramscope_bench::experiments::SEED,
            FleetConfig { workers: 1 },
            Some(bus),
        ),
        (false, _) => fleet::run_fleet_with_events(
            &jobs,
            dramscope_bench::experiments::SEED,
            FleetConfig { workers },
            journal.bus(),
        ),
    };
    println!(
        "Fleet characterization — {} profiles on {} workers, {:.0} ms wall",
        report.results.len(),
        report.workers,
        report.wall_ms
    );
    if !tele.quiet {
        print!("{}", report.table());
        println!("\nRun report (JSON lines):");
        print!("{}", report.json_lines());
    }
    tele.emit(&report.merged_metrics())?;
    journal.finish()?;
    if !report.all_ok() {
        std::process::exit(1);
    }
    Ok(())
}

fn run_sharded_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map_or("hbm2", String::as_str);
    let Some((profile, opts)) = profiles::named_job(name) else {
        return Err(unknown_profile(name));
    };
    let seed = parse_flag::<u64>(args, "--seed")?.unwrap_or(dramscope_bench::experiments::SEED);
    let shards = parse_flag::<usize>(args, "--shards")?.unwrap_or(0);
    let tele = Telemetry::from_args(args)?;
    let journal = Journal::from_args(args)?;
    // The shard engine has no event hook, so the lifecycle is narrated
    // here: one queued/started/finished triple for the whole device run.
    if let Some(bus) = journal.bus() {
        bus.emit(EventDraft::info("job.queued").job(name));
        bus.emit(
            EventDraft::info("job.started")
                .job(name)
                .field_u64("seed", seed),
        );
    }
    let report = if args.iter().any(|a| a == "--serial") {
        shard::characterize_sharded_serial(&profile, seed, opts)
    } else {
        shard::characterize_sharded(&profile, seed, opts, ShardConfig { shards })
    };
    if let Some(bus) = journal.bus() {
        bus.emit(
            EventDraft::info("job.finished")
                .job(name)
                .field_bool("ok", report.all_ok())
                .wall_ms(report.wall_ms as u64),
        );
    }
    println!(
        "Sharded characterization — {} ({} banks) on {} shard worker(s), {:.0} ms wall",
        report.label,
        report.results.len(),
        report.shards,
        report.wall_ms
    );
    if !tele.quiet {
        print!("{}", report.table());
        println!("\nRun summary:");
        println!("{}", report.summary_json());
    }
    if let Ok(dossier) = report.dossier() {
        println!(
            "sharded dossier digest {:#018x} (identical for serial and any shard count)",
            dossier.digest()
        );
    }
    tele.emit(&report.merged_metrics())?;
    journal.finish()?;
    if !report.all_ok() {
        std::process::exit(1);
    }
    Ok(())
}

fn run_record_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage("record needs a profile name");
    };
    let Some((profile, opts)) = profiles::named_job(name) else {
        return Err(unknown_profile(name));
    };
    let seed = parse_flag::<u64>(args, "--seed")?.unwrap_or(dramscope_bench::experiments::SEED);
    let out = parse_flag::<String>(args, "--out")?.unwrap_or_else(|| format!("{name}.trace"));
    // v2 (indexed container) is the default; `--v1` writes the bare
    // stream. The v1 payload bytes are identical either way.
    let v1 = args.iter().any(|a| a == "--v1");
    let encode = |trace: &Trace| {
        if v1 {
            trace.to_bytes()
        } else {
            trace.to_bytes_indexed()
        }
    };
    let tele = Telemetry::from_args(args)?;

    if args.iter().any(|a| a == "--sharded") {
        let shards = parse_flag::<usize>(args, "--shards")?.unwrap_or(0);
        let (dossier, trace, metrics) = trace_run::record_characterization_sharded(
            &profile,
            seed,
            opts,
            ShardConfig { shards },
        )?;
        let bytes = encode(&trace);
        std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "recorded {} events ({} bytes) to {out} — sharded, {} bank segments",
            trace.events.len(),
            bytes.len(),
            dossier.banks.len()
        );
        println!(
            "seed {seed}, sharded dossier digest {:#018x}",
            dossier.digest()
        );
        tele.emit(&metrics)?;
        return Ok(());
    }

    let (dossier, stats, trace, metrics) =
        trace_run::record_characterization_instrumented(&profile, seed, opts)?;
    let bytes = encode(&trace);
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    if !tele.quiet {
        print!("{dossier}");
        println!();
    }
    println!(
        "recorded {} events ({} bytes) to {out}",
        trace.events.len(),
        bytes.len()
    );
    let digest = trace
        .header
        .dossier_digest
        .ok_or("recorded trace is missing its dossier digest")?;
    println!("seed {seed}, dossier digest {digest:#018x}");
    if !tele.quiet {
        print_run_report(&stats);
    }
    tele.emit(&metrics)?;
    Ok(())
}

fn run_replay_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage("replay needs a trace file");
    };
    let tele = Telemetry::from_args(args)?;
    let trace = load_trace(path)?;
    println!(
        "replaying {} events for {} (seed {})",
        trace.events.len(),
        trace.header.profile_label,
        trace.header.seed
    );
    if trace.header.meta("shard_banks").is_some() {
        let (dossier, metrics) = trace_run::replay_characterization_sharded(&trace)?;
        println!(
            "sharded replay verified: {} bank segments and dossier digest {:#018x} \
             reproduced bit-for-bit",
            dossier.banks.len(),
            dossier.digest()
        );
        tele.emit(&metrics)?;
        return Ok(());
    }
    let (dossier, stats, metrics) = trace_run::replay_characterization_instrumented(&trace)?;
    if !tele.quiet {
        print!("{dossier}");
        println!();
    }
    println!(
        "replay verified: command stream and dossier digest {:#018x} reproduced bit-for-bit",
        dossier.digest()
    );
    if !tele.quiet {
        print_run_report(&stats);
    }
    tele.emit(&metrics)?;

    if let Some(repeats) = parse_flag::<u32>(args, "--bench")? {
        let bench = trace_run::replay_benchmark(&trace, repeats)?;
        let mut table = Table::new(vec!["run", "wall_ms", "commands", "cmds_per_sec"]);
        for (i, p) in bench.phases.iter().enumerate() {
            let per_sec = if p.wall_ms > 0.0 {
                p.commands as f64 / (p.wall_ms / 1e3)
            } else {
                0.0
            };
            table.row(vec![
                format!("{i}"),
                format!("{:.2}", p.wall_ms),
                p.commands.to_string(),
                format!("{per_sec:.0}"),
            ]);
        }
        println!("\nReplay throughput ({repeats} runs):");
        print!("{table}");
    }
    Ok(())
}

fn run_bench_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use dram_perf::{gate, run_all, BenchConfig, PerfSnapshot, SharedProfiler};

    let quiet = args.iter().any(|a| a == "--quiet");
    let defaults = BenchConfig::default();
    let config = BenchConfig {
        warmup: parse_flag::<u32>(args, "--warmup")?.unwrap_or(defaults.warmup),
        iters: parse_flag::<u32>(args, "--iters")?.unwrap_or(defaults.iters),
    };

    let mut benches = dramscope_bench::perf_suites::suites();
    if let Some(only) = parse_flag::<String>(args, "--only")? {
        let wanted: Vec<&str> = only
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        for name in &wanted {
            if !dramscope_bench::perf_suites::SUITE_NAMES.contains(name) {
                return usage(format!(
                    "unknown suite '{name}' (try one of: {:?})",
                    dramscope_bench::perf_suites::SUITE_NAMES
                ));
            }
        }
        benches.retain(|b| wanted.iter().any(|w| *w == b.name));
    }

    // Optional profiled run: one small characterization with the span
    // profiler riding the command sink, before the timed suites so the
    // tree never includes bench-harness noise.
    let flame_path = parse_flag::<String>(args, "--flame")?;
    let profile_json_path = parse_flag::<String>(args, "--profile-json")?;
    let want_profile = args.iter().any(|a| a == "--profile")
        || flame_path.is_some()
        || profile_json_path.is_some();
    if want_profile {
        let profiler = SharedProfiler::new();
        characterize_instrumented(
            &ChipProfile::test_small(),
            dramscope_bench::experiments::SEED,
            small_opts(129),
            Some(profiler.sink()),
        )?;
        let tree = profiler.finish();
        if !quiet {
            println!("Span profile (test_small characterization):");
            print!("{}", tree.to_text());
            println!();
        }
        if let Some(path) = &flame_path {
            std::fs::write(path, tree.to_collapsed())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote collapsed stacks to {path} (feed to flamegraph.pl)");
        }
        if let Some(path) = &profile_json_path {
            std::fs::write(path, tree.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote span-tree JSON to {path}");
        }
    }

    if !quiet {
        println!(
            "Running {} suite(s), {} warmup + {} measured iteration(s):",
            benches.len(),
            config.warmup,
            config.iters.max(1)
        );
    }
    let results = run_all(&mut benches, config);
    let snapshot = PerfSnapshot::from_results(&results);
    if !quiet {
        let mut t = Table::new(vec![
            "suite",
            "min_ms",
            "median_ms",
            "p95_ms",
            "iters",
            "commands",
            "cmds_per_sec",
        ]);
        for r in &results {
            t.row(vec![
                r.name.clone(),
                format!("{:.3}", r.stats.min_ns as f64 / 1e6),
                format!("{:.3}", r.stats.median_ns as f64 / 1e6),
                format!("{:.3}", r.stats.p95_ns as f64 / 1e6),
                r.stats.n.to_string(),
                r.commands.to_string(),
                format!("{:.0}", r.commands_per_sec()),
            ]);
        }
        print!("{t}");
    }

    // PerfError's Display carries the path and byte offset; surface that
    // rather than the Debug repr a bare `?` on Box<dyn Error> prints.
    if let Some(path) = parse_flag::<String>(args, "--save")? {
        snapshot.save(&path).map_err(|e| e.to_string())?;
        println!("saved snapshot to {path}");
    }
    if let Some(baseline_path) = parse_flag::<String>(args, "--baseline")? {
        let threshold = parse_flag::<f64>(args, "--gate")?.unwrap_or(20.0);
        let baseline = PerfSnapshot::load(&baseline_path).map_err(|e| e.to_string())?;
        let report = gate::compare(&baseline, &snapshot, threshold).map_err(|e| e.to_string())?;
        println!("{report}");
        if report.failed() {
            std::process::exit(1);
        }
    } else if parse_flag::<f64>(args, "--gate")?.is_some() {
        return usage("--gate needs --baseline FILE to compare against");
    }
    Ok(())
}

/// The `serve` subcommand: runs the `dramscoped` daemon in-process —
/// JSON-lines requests from stdin (or a unix socket with `--socket`),
/// the shared fleet pool, the content-addressed dossier cache.
fn run_serve_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use dramscope_service::{ConnMode, Service};
    let workers = parse_flag::<usize>(args, "--workers")?.unwrap_or(0);
    let socket = parse_flag::<String>(args, "--socket")?;
    let trace_dir = parse_flag::<String>(args, "--trace-dir")?;
    let cache_dir = parse_flag::<String>(args, "--cache-dir")?;
    let cache_max_entries = parse_flag::<u64>(args, "--cache-max-entries")?.unwrap_or(0);
    let cache_max_bytes = parse_flag::<u64>(args, "--cache-max-bytes")?.unwrap_or(0);
    let journal = Journal::from_args(args)?;
    let mut mode = ConnMode::Pipelined;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // parse_flag already checked the values exist and parse.
            "--workers"
            | "--socket"
            | "--journal"
            | "--trace-dir"
            | "--cache-dir"
            | "--cache-max-entries"
            | "--cache-max-bytes" => i += 2,
            "--serial" => {
                mode = ConnMode::Serial;
                i += 1;
            }
            other => return usage(format!("serve does not take '{other}'")),
        }
    }
    let service = std::sync::Arc::new(match journal.bus() {
        None => Service::new(workers),
        Some(bus) => Service::with_events(workers, bus.clone()),
    });
    if let Some(dir) = trace_dir {
        service.set_trace_dir(dir);
    }
    if let Some(dir) = cache_dir {
        service
            .set_cache_dir(&dir)
            .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
    }
    if cache_max_entries != 0 || cache_max_bytes != 0 {
        service.set_cache_limits(cache_max_entries, cache_max_bytes);
    }
    match socket {
        None => dramscope_service::serve_stdio_mode(&service, mode)?,
        Some(path) => serve_socket(&service, &path, mode)?,
    }
    journal.finish()?;
    Ok(())
}

#[cfg(unix)]
fn serve_socket(
    service: &std::sync::Arc<dramscope_service::Service>,
    path: &str,
    mode: dramscope_service::ConnMode,
) -> Result<(), Box<dyn std::error::Error>> {
    dramscope_service::serve_unix_mode(service, std::path::Path::new(path), mode)?;
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(
    _service: &std::sync::Arc<dramscope_service::Service>,
    _path: &str,
    _mode: dramscope_service::ConnMode,
) -> Result<(), Box<dyn std::error::Error>> {
    usage("--socket requires a unix platform")
}

fn run_diff_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (Some(a), Some(b)) = (
        args.first().filter(|a| !a.starts_with("--")),
        args.get(1).filter(|a| !a.starts_with("--")),
    ) else {
        return usage("diff needs two trace files");
    };
    // The same filter applies to both sides, so a diff scoped to one
    // phase or bank compares exactly the events both traces keep.
    let filter = SegmentFilter::from_args(args)?;
    let (ta, _, _) = load_filtered_trace(a, &filter)?;
    let (tb, _, _) = load_filtered_trace(b, &filter)?;
    let diff = diff_traces(&ta, &tb);
    println!("{diff}");
    if !diff.identical() {
        std::process::exit(1);
    }
    Ok(())
}

fn run_dump_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage("dump needs a trace file");
    };
    let filter = SegmentFilter::from_args(args)?;
    // Dumps run to tens of thousands of lines and get piped into `head`;
    // a closed stdout is normal termination, not an error.
    use std::io::Write;
    let text = if filter.is_active() {
        dump_filtered(path, &filter)?
    } else {
        load_trace(path)?.dump()
    };
    match std::io::stdout().write_all(text.as_bytes()) {
        Err(e) if e.kind() != std::io::ErrorKind::BrokenPipe => Err(e.into()),
        _ => Ok(()),
    }
}

/// Filtered dump: only the selected segments are decoded, and every
/// event line keeps its global index in the full stream so filtered and
/// unfiltered dumps line up.
fn dump_filtered(path: &str, filter: &SegmentFilter) -> Result<String, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let indexed = IndexedTrace::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let header = indexed.header();
    let mut out = format!(
        "# trace: {} seed={} events={}\n",
        header.profile_label,
        header.seed,
        indexed.event_count()
    );
    let mut shown = 0usize;
    let mut decoded = 0usize;
    for (i, seg) in indexed.segments().iter().enumerate() {
        if !filter.selects(i, seg) {
            continue;
        }
        decoded += 1;
        out.push_str(&format!(
            "# segment {i}: {} ({} events)\n",
            seg.label, seg.events
        ));
        let start = indexed.segment_event_start(i);
        for (j, ev) in indexed
            .decode_segment(i)
            .map_err(|e| format!("{path}: {e}"))?
            .iter()
            .enumerate()
        {
            if !filter.keeps_event(ev) {
                continue;
            }
            shown += 1;
            out.push_str(&format!("{:>8} {ev}\n", start as usize + j));
        }
    }
    out.push_str(&format!(
        "# {shown} event(s) from {decoded} of {} segment(s)\n",
        indexed.segments().len()
    ));
    Ok(out)
}

/// Renders a segment's non-zero per-mnemonic counts as `act=12 rd=34`.
fn ops_summary(ops: &[u64; 10]) -> String {
    let cells: Vec<String> = SEGMENT_MNEMONICS
        .iter()
        .zip(ops.iter())
        .filter(|(_, n)| **n > 0)
        .map(|(m, n)| format!("{m}={n}"))
        .collect();
    if cells.is_empty() {
        "-".into()
    } else {
        cells.join(" ")
    }
}

/// Renders a segment's time coverage as `min..max` picoseconds.
fn time_span(min_ps: Option<u64>, max_ps: Option<u64>) -> String {
    match (min_ps, max_ps) {
        (Some(min), Some(max)) => format!("{min}..{max}"),
        _ => "-".into(),
    }
}

/// The `index` subcommand: upgrades a trace (either version) to the v2
/// indexed container and prints the segment table. The v1 payload bytes
/// are carried over unchanged, so digests and replay are unaffected.
fn run_index_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage("index needs a trace file");
    };
    let out = parse_flag::<String>(args, "--out")?.unwrap_or_else(|| {
        let stem = path.strip_suffix(".trace").unwrap_or(path);
        format!("{stem}.v2.trace")
    });
    let trace = load_trace(path)?;
    let bytes = trace.to_bytes_indexed();
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    // Reopen what was written so the table shows the exact on-disk
    // offsets, not a parallel computation of them.
    let indexed = IndexedTrace::from_bytes(&bytes).map_err(|e| format!("{out}: {e}"))?;
    let mut t = Table::new(vec![
        "segment", "label", "offset", "bytes", "events", "banks", "time_ps", "commands",
    ]);
    for (i, seg) in indexed.segments().iter().enumerate() {
        let banks = if seg.banks.is_empty() {
            "-".into()
        } else {
            seg.banks
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        t.row(vec![
            i.to_string(),
            seg.label.clone(),
            seg.offset.to_string(),
            seg.len.to_string(),
            seg.events.to_string(),
            banks,
            time_span(seg.min_ps, seg.max_ps),
            ops_summary(&seg.ops),
        ]);
    }
    let text = format!(
        "{t}indexed {} event(s) into {} segment(s) ({} bytes) to {out}\n",
        indexed.event_count(),
        indexed.segments().len(),
        bytes.len()
    );
    // Segment tables get piped into `head`; a closed stdout is normal
    // termination, not an error.
    use std::io::Write;
    match std::io::stdout().write_all(text.as_bytes()) {
        Err(e) if e.kind() != std::io::ErrorKind::BrokenPipe => Err(e.into()),
        _ => Ok(()),
    }
}

/// Splits a comma-separated flag value, rejecting empty entries.
fn parse_list_flag(
    args: &[String],
    flag: &str,
) -> Result<Option<Vec<String>>, Box<dyn std::error::Error>> {
    let Some(raw) = parse_flag::<String>(args, flag)? else {
        return Ok(None);
    };
    let items: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if items.is_empty() {
        return usage(format!("{flag} needs at least one value"));
    }
    Ok(Some(items))
}

/// The `query` subcommand: evaluates a predicate over one trace file or
/// every `*.trace` in a directory, pruning non-matching segments by
/// index metadata before decoding. Exits 1 when nothing matches.
fn run_query_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage("query needs a trace file or directory");
    };
    let banks = match parse_list_flag(args, "--bank")? {
        None => None,
        Some(items) => {
            let mut banks = Vec::new();
            for item in items {
                match item.parse::<u32>() {
                    Ok(b) => banks.push(b),
                    Err(e) => return usage(format!("invalid --bank value '{item}': {e}")),
                }
            }
            Some(banks)
        }
    };
    let mnemonics = match parse_list_flag(args, "--cmd")? {
        None => None,
        Some(items) => {
            for item in &items {
                if !SEGMENT_MNEMONICS.contains(&item.as_str()) {
                    return usage(format!(
                        "unknown --cmd '{item}' (try one of: {})",
                        SEGMENT_MNEMONICS.join(", ")
                    ));
                }
            }
            Some(items)
        }
    };
    let query = Query {
        from_ps: parse_flag::<u64>(args, "--from-ps")?,
        to_ps: parse_flag::<u64>(args, "--to-ps")?,
        banks,
        mnemonics,
        marker_prefix: parse_flag::<String>(args, "--marker")?,
        min_count: parse_flag::<u64>(args, "--min-count")?,
        max_count: parse_flag::<u64>(args, "--max-count")?,
    };
    if let (Some(from), Some(to)) = (query.from_ps, query.to_ps) {
        if from > to {
            return usage(format!("--from-ps {from} is after --to-ps {to}"));
        }
    }
    let report = dram_trace::query_path(std::path::Path::new(path), &query)?;

    let out = if args.iter().any(|a| a == "--json") {
        let mut s = report.to_json();
        s.push('\n');
        s
    } else {
        let mut t = Table::new(vec![
            "file", "segment", "label", "events", "matched", "time_ps", "commands",
        ]);
        for hit in &report.hits {
            t.row(vec![
                hit.file.clone(),
                hit.segment.to_string(),
                hit.label.clone(),
                hit.events.to_string(),
                hit.matched.to_string(),
                time_span(hit.min_ps, hit.max_ps),
                ops_summary(&hit.ops),
            ]);
        }
        if args.iter().any(|a| a == "--csv") {
            t.to_csv()
        } else {
            format!(
                "{t}matched {} event(s) in {} segment(s) across {} file(s); \
                 decoded {} of {} segment(s)\n",
                report.matched,
                report.hits.len(),
                report.files,
                report.segments_decoded,
                report.segments
            )
        }
    };
    // Query listings get piped into `head`/`grep`; a closed stdout is
    // normal termination, not an error.
    use std::io::Write;
    if let Err(e) = std::io::stdout().write_all(out.as_bytes()) {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            return Err(e.into());
        }
    }
    if !report.is_match() {
        std::process::exit(1);
    }
    Ok(())
}

/// Per-job lifecycle tally for the `events` summary.
#[derive(Default)]
struct Lifecycle {
    queued: usize,
    started: usize,
    finished: usize,
    panicked: usize,
}

impl Lifecycle {
    /// Every start is accounted for by a finish or a panic (queue-only
    /// entries are jobs the journal caught before they ran).
    fn matched(&self) -> bool {
        self.started == self.finished + self.panicked
    }
}

/// The `events` subcommand: reads a journal written with `--journal`,
/// prints the matching event lines, and reconstructs the per-job
/// lifecycle. Corrupt lines are salvaged around (reported to stderr with
/// their 1-based line numbers), never fatal.
fn run_events_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage("events needs a journal file");
    };
    let sev = match parse_flag::<String>(args, "--sev")? {
        None => Severity::Debug,
        Some(s) => match Severity::parse(&s) {
            Some(sev) => sev,
            None => {
                return usage(format!(
                    "invalid --sev '{s}' (try debug, info, warn, error)"
                ))
            }
        },
    };
    let job = parse_flag::<String>(args, "--job")?;
    let kind = parse_flag::<String>(args, "--kind")?;
    let since_seq = parse_flag::<u64>(args, "--since-seq")?.unwrap_or(0);
    let until_seq = parse_flag::<u64>(args, "--until-seq")?.unwrap_or(u64::MAX);
    let tail = parse_flag::<usize>(args, "--tail")?;
    let stable = args.iter().any(|a| a == "--stable");
    let quiet = args.iter().any(|a| a == "--quiet");

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut corrupt = 0usize;
    let mut events: Vec<Event> = Vec::new();
    for result in scan_journal(&text) {
        match result {
            Ok(e) => events.push(e),
            Err(e) => {
                corrupt += 1;
                eprintln!("characterize events: {e}");
            }
        }
    }
    let total = events.len();
    let mut selected: Vec<&Event> = events
        .iter()
        .filter(|e| {
            e.severity >= sev
                && e.seq >= since_seq
                && e.seq <= until_seq
                && job
                    .as_deref()
                    .is_none_or(|j| e.job_id.as_deref() == Some(j))
                && kind.as_deref().is_none_or(|k| e.kind.starts_with(k))
        })
        .collect();
    if let Some(n) = tail {
        let skip = selected.len().saturating_sub(n);
        selected.drain(..skip);
    }

    let mut out = String::new();
    if !quiet {
        for e in &selected {
            out.push_str(&if stable { e.stable_line() } else { e.line() });
            out.push('\n');
        }
    }

    // Reconstruct the lifecycle of every job the selected events
    // mention. Sharded tasks key by (job, shard) so each (profile, bank)
    // task must balance on its own.
    let mut jobs_seen: std::collections::BTreeMap<(String, Option<u32>), Lifecycle> =
        std::collections::BTreeMap::new();
    for e in &selected {
        let Some(job_id) = &e.job_id else { continue };
        let entry = jobs_seen.entry((job_id.clone(), e.shard)).or_default();
        match e.kind.as_str() {
            "job.queued" => entry.queued += 1,
            "job.started" => entry.started += 1,
            "job.finished" => entry.finished += 1,
            "job.panicked" => entry.panicked += 1,
            _ => {}
        }
    }
    jobs_seen.retain(|_, l| l.queued + l.started + l.finished + l.panicked > 0);
    if !jobs_seen.is_empty() {
        let mut t = Table::new(vec![
            "job",
            "shard",
            "queued",
            "started",
            "finished",
            "panicked",
            "lifecycle",
        ]);
        for ((job_id, shard), l) in &jobs_seen {
            t.row(vec![
                job_id.clone(),
                shard.map_or_else(|| "-".into(), |s| s.to_string()),
                l.queued.to_string(),
                l.started.to_string(),
                l.finished.to_string(),
                l.panicked.to_string(),
                if l.matched() { "matched" } else { "UNMATCHED" }.into(),
            ]);
        }
        out.push_str("\nJob lifecycle:\n");
        out.push_str(&t.to_string());
    }
    let unmatched = jobs_seen.values().filter(|l| !l.matched()).count();
    out.push_str(&format!(
        "{} event(s) read, {} matched filters, {} corrupt line(s); \
         {} job lifecycle(s), {} unmatched\n",
        total,
        selected.len(),
        corrupt,
        jobs_seen.len(),
        unmatched,
    ));

    // Event listings get piped into `head`/`grep`; a closed stdout is
    // normal termination, not an error.
    use std::io::Write;
    if let Err(e) = std::io::stdout().write_all(out.as_bytes()) {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            return Err(e.into());
        }
    }
    if unmatched > 0 {
        std::process::exit(1);
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    // Subcommands must come first; their flags follow. A profile run
    // takes its name from the first non-flag argument, so bare
    // `characterize --quiet` still selects the default profile.
    match args.first().map(String::as_str) {
        Some("fleet") => return run_fleet_mode(&args[1..]),
        Some("sharded") => return run_sharded_mode(&args[1..]),
        Some("record") => return run_record_mode(&args[1..]),
        Some("replay") => return run_replay_mode(&args[1..]),
        Some("diff") => return run_diff_mode(&args[1..]),
        Some("dump") => return run_dump_mode(&args[1..]),
        Some("stats") => return run_stats_mode(&args[1..]),
        Some("index") => return run_index_mode(&args[1..]),
        Some("query") => return run_query_mode(&args[1..]),
        Some("bench") => return run_bench_mode(&args[1..]),
        Some("serve") => return run_serve_mode(&args[1..]),
        Some("events") => return run_events_mode(&args[1..]),
        _ => {}
    }
    let name = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0 || (args[*i - 1] != "--metrics" && args[*i - 1] != "--journal"))
        })
        .map_or("default", |(_, s)| s.as_str());
    let Some((profile, mut opts)) = profiles::preset_job(name) else {
        return usage(format!(
            "unknown command or profile '{name}' (try one of: {}, \
             fleet, sharded, record, replay, diff, dump, stats, index, query, bench, serve, events)",
            profiles::known_names().join(", ")
        ));
    };
    let tele = Telemetry::from_args(args)?;
    let journal = Journal::from_args(args)?;
    opts.with_swizzle = true;
    let seed = dramscope_bench::experiments::SEED;
    if let Some(bus) = journal.bus() {
        bus.emit(EventDraft::info("job.queued").job(name));
        bus.emit(
            EventDraft::info("job.started")
                .job(name)
                .field_u64("seed", seed),
        );
    }
    // A journaled run also surfaces simulator clock anomalies as events.
    let sink = journal.bus().map(|bus| {
        Box::new(AnomalySink::new(bus.clone(), None, Some(name)))
            as Box<dyn dram_sim::CommandSink + Send>
    });
    let outcome = characterize_instrumented(&profile, seed, opts, sink);
    if let Some(bus) = journal.bus() {
        bus.emit(
            EventDraft::info("job.finished")
                .job(name)
                .field_bool("ok", outcome.is_ok()),
        );
    }
    journal.finish()?;
    let (dossier, stats, metrics) = outcome?;
    if !tele.quiet {
        print!("{dossier}");
        print_run_report(&stats);
    }
    tele.emit(&metrics)?;
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("characterize: {e}");
        // Usage errors (bad flags, unknown names, missing operands)
        // exit 2 in every subcommand; runtime failures exit 1.
        let code = if e.is::<UsageError>() { 2 } else { 1 };
        std::process::exit(code);
    }
}
