//! Full black-box characterization: prints the dossier the toolkit
//! assembles from RowCopy, retention, AIB, power, TRR, and ECC probing.
//! Run with `--release`:
//!
//! ```text
//! cargo run --release -p dramscope-bench --bin characterize [profile]
//! cargo run --release -p dramscope-bench --bin characterize fleet [--serial] [--workers N]
//! ```
//!
//! `profile` is a preset name like `mfr_a_x4_2016` (default),
//! `mfr_b_x4_2019`, `mfr_c_x8_2016`, or `hbm2`. The special name
//! `fleet` characterizes the whole Table I population in parallel and
//! prints the per-device summary table followed by the JSON-lines run
//! report; `--serial` runs the same jobs one at a time (the determinism
//! / speedup baseline) and `--workers N` pins the worker count.

use dramscope_core::dossier::characterize_with_stats;
use dramscope_core::fleet::{self, FleetConfig, FleetJob};

/// Preset names, index-aligned with [`fleet::table1_jobs`] (which
/// follows `ChipProfile::all_presets` order).
const PRESET_NAMES: [&str; 16] = [
    "mfr_a_x4_2016",
    "mfr_a_x4_2017",
    "mfr_a_x4_2018",
    "mfr_a_x4_2021",
    "mfr_a_x8_2017",
    "mfr_a_x8_2018",
    "mfr_a_x8_2019",
    "mfr_b_x4_2019",
    "mfr_b_x8_2017",
    "mfr_b_x8_2018",
    "mfr_b_x8_2019",
    "mfr_c_x4_2018",
    "mfr_c_x4_2021",
    "mfr_c_x8_2016",
    "mfr_c_x8_2019",
    "hbm2",
];

fn job_by_name(name: &str) -> Option<FleetJob> {
    let name = if name == "default" {
        "mfr_a_x4_2016"
    } else {
        name
    };
    let idx = PRESET_NAMES.iter().position(|n| *n == name)?;
    Some(fleet::table1_jobs().swap_remove(idx))
}

fn run_fleet_mode(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let serial = args.iter().any(|a| a == "--serial");
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map(|w| w.parse::<usize>())
        .transpose()?
        .unwrap_or(0);
    let jobs = fleet::table1_jobs();
    let report = if serial {
        fleet::run_fleet_serial(&jobs, dramscope_bench::experiments::SEED)
    } else {
        fleet::run_fleet(
            &jobs,
            dramscope_bench::experiments::SEED,
            FleetConfig { workers },
        )
    };
    println!(
        "Fleet characterization — {} profiles on {} workers, {:.0} ms wall",
        report.results.len(),
        report.workers,
        report.wall_ms
    );
    print!("{}", report.table());
    println!("\nRun report (JSON lines):");
    print!("{}", report.json_lines());
    if !report.all_ok() {
        std::process::exit(1);
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("default", |s| s.as_str());
    if name == "fleet" {
        return run_fleet_mode(&args[1..]);
    }
    let Some(mut job) = job_by_name(name) else {
        eprintln!("unknown profile '{name}' (try one of: {PRESET_NAMES:?}, fleet)");
        std::process::exit(2);
    };
    job.opts.with_swizzle = true;
    let (dossier, stats) =
        characterize_with_stats(&job.profile, dramscope_bench::experiments::SEED, job.opts)?;
    print!("{dossier}");
    println!("\nRun report:");
    for p in &stats.phases {
        println!(
            "  {:<10} {:>10.1} ms {:>12} cmds {:>8} flips",
            p.name, p.wall_ms, p.commands, p.bitflips
        );
    }
    println!(
        "  {:<10} {:>10.1} ms {:>12} cmds {:>8} flips",
        "total",
        stats.wall_ms(),
        stats.commands(),
        stats.bitflips()
    );
    Ok(())
}
