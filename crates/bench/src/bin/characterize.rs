//! Full black-box characterization of one device: prints the dossier the
//! toolkit assembles from RowCopy, retention, AIB, power, TRR, and ECC
//! probing. Run with `--release`:
//!
//! ```text
//! cargo run --release -p dramscope-bench --bin characterize [profile]
//! ```
//!
//! `profile` is a preset name like `mfr_a_x4_2016` (default),
//! `mfr_b_x4_2019`, `mfr_c_x8_2016`, or `hbm2`.

use dram_sim::ChipProfile;
use dramscope_core::dossier::{characterize, CharacterizeOptions};

fn profile_by_name(name: &str) -> Option<(ChipProfile, (u32, u32))> {
    // Each profile gets an interior probe range inside a non-edge
    // subarray of its layout.
    Some(match name {
        "mfr_a_x4_2016" | "default" => (ChipProfile::mfr_a_x4_2016(), (648, 704)),
        "mfr_a_x4_2018" => (ChipProfile::mfr_a_x4_2018(), (840, 896)),
        "mfr_a_x4_2021" => (ChipProfile::mfr_a_x4_2021(), (840, 896)),
        "mfr_a_x8_2017" => (ChipProfile::mfr_a_x8_2017(), (648, 704)),
        "mfr_b_x4_2019" => (ChipProfile::mfr_b_x4_2019(), (840, 896)),
        "mfr_b_x8_2017" => (ChipProfile::mfr_b_x8_2017(), (840, 896)),
        "mfr_c_x4_2018" => (ChipProfile::mfr_c_x4_2018(), (696, 752)),
        "mfr_c_x8_2016" => (ChipProfile::mfr_c_x8_2016(), (696, 752)),
        "hbm2" => (ChipProfile::hbm2_mfr_a(), (840, 896)),
        _ => return None,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "default".into());
    let Some((profile, probe_range)) = profile_by_name(&name) else {
        eprintln!("unknown profile '{name}'");
        std::process::exit(2);
    };
    let opts = CharacterizeOptions {
        with_swizzle: true,
        probe_range,
        ..CharacterizeOptions::default()
    };
    let dossier = characterize(&profile, dramscope_bench::experiments::SEED, opts)?;
    print!("{dossier}");
    Ok(())
}
