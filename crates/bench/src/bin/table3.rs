//! Regenerates the corresponding paper artifact. Run with `--release`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", dramscope_bench::experiments::table3()?);
    Ok(())
}
