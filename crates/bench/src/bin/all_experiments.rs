//! Runs every table/figure experiment in sequence (the full artifact
//! regeneration). Run with `--release`; takes a few minutes.

use dramscope_bench::experiments as e;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", e::table1()?);
    println!("{}", e::table3()?);
    println!("{}", e::fig5_pitfalls()?);
    println!("{}", e::fig7_swizzle()?);
    println!("{}", e::fig8_patterns()?);
    println!("{}", e::fig10_edge_ber()?);
    println!("{}", e::fig12_profile()?);
    println!("{}", e::fig13_gate_types()?);
    println!("{}", e::fig14_horizontal()?);
    println!("{}", e::fig15_hcnt()?);
    println!("{}", e::fig16_sweep()?.0);
    println!("{}", e::fig17_worst_case()?);
    println!("{}", e::sec6_protection()?);
    println!("{}", e::dossier_report()?);
    println!("{}", e::fleet_report()?);
    println!("{}", e::trr_study()?);
    println!("{}", e::side_channels()?);
    println!("{}", e::observations_report()?);
    Ok(())
}
