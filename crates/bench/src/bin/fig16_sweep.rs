//! Regenerates the Fig. 16 pattern-sweep heat map. Run with `--release`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (report, _matrix) = dramscope_bench::experiments::fig16_sweep()?;
    print!("{report}");
    Ok(())
}
