//! Regenerates the corresponding paper artifact. Run with `--release`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", dramscope_bench::experiments::fig13_gate_types()?);
    Ok(())
}
