//! Regenerates the corresponding paper artifact. Run with `--release`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", dramscope_bench::experiments::fig17_worst_case()?);
    Ok(())
}
