//! Regenerates the corresponding extension study. Run with `--release`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", dramscope_bench::experiments::side_channels()?);
    Ok(())
}
