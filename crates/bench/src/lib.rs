//! # dramscope-bench
//!
//! Experiment drivers regenerating every table and figure of the
//! DRAMScope paper's evaluation, exposed through the `src/bin/*`
//! binaries (full-scale runs, paper-style output). Population-wide
//! drivers fan out across devices on the `dramscope-core` fleet engine.
//!
//! | Driver | Paper artifact |
//! |---|---|
//! | [`experiments::table1`] | Table I — device population |
//! | [`experiments::table3`] | Table III — subarray/edge/coupled structures |
//! | [`experiments::fig5_pitfalls`] | Fig. 5 — RCD/DQ mapping pitfalls |
//! | [`experiments::fig7_swizzle`] | Fig. 7 — recovered data swizzling |
//! | [`experiments::fig8_patterns`] | Fig. 8 — naive pattern distortion |
//! | [`experiments::fig10_edge_ber`] | Fig. 10 — edge vs typical subarray BER |
//! | [`experiments::fig12_profile`] | Fig. 12 — BER vs physical bit index |
//! | [`experiments::fig13_gate_types`] | Fig. 13 — BER by gate type and charge |
//! | [`experiments::fig14_horizontal`] | Fig. 14 — horizontal data-pattern influence |
//! | [`experiments::fig15_hcnt`] | Fig. 15 — relative H_cnt |
//! | [`experiments::fig16_sweep`] | Fig. 16 — 4-bit pattern sweep |
//! | [`experiments::fig17_worst_case`] | Fig. 17 — worst-case adversarial pattern |
//! | [`experiments::sec6_protection`] | §VI — attacks and protections |
//! | [`experiments::fleet_report`] | Table I population, characterized in parallel |

#![warn(missing_docs)]

pub mod experiments;
pub mod perf_suites;
