//! Criterion benchmarks over the reproduction's core kernels: one group
//! per paper artifact, each running a scaled version of the experiment's
//! inner loop so `cargo bench` finishes in minutes.

use criterion::{criterion_group, criterion_main, Criterion};
use dram_sim::{ChipProfile, DramChip, Time};
use dram_testbed::Testbed;
use dramscope_bench::experiments;
use dramscope_core::hammer::{self, AibConfig, Attack};
use dramscope_core::patterns::{nibble_pattern_row, CellLayout};
use dramscope_core::protect::{self, AttackStrategy, MisraGries};
use dramscope_core::rowcopy_probe;
use std::hint::black_box;

fn small_tb(seed: u64) -> Testbed {
    Testbed::new(DramChip::new(ChipProfile::test_small(), seed))
}

/// Table III kernel: subarray-boundary discovery via RowCopy probing.
fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/subarray_discovery_128rows", |b| {
        b.iter(|| {
            let mut tb = small_tb(1);
            let h = rowcopy_probe::subarray_heights(&mut tb, 0, 0..129).unwrap();
            black_box(h)
        })
    });
    c.bench_function("table3/coupled_row_detection", |b| {
        b.iter(|| {
            let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), 1));
            black_box(rowcopy_probe::detect_coupled_rows(&mut tb, 0).unwrap())
        })
    });
}

/// Fig. 7 kernel: one influence-probe run of the swizzle pipeline.
fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7/influence_probe_small", |b| {
        b.iter(|| black_box(experiments::quick_influence_kernel().unwrap()))
    });
}

/// Fig. 8 kernel: physical-image conversion through the swizzle.
fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8/pattern_round_trip", |b| {
        b.iter(|| black_box(experiments::quick_pattern_kernel()))
    });
}

/// Fig. 10/12/13 kernel: one measured single-sided attack.
fn bench_attack_measure(c: &mut Criterion) {
    c.bench_function("fig12/hammer_300k_and_read", |b| {
        b.iter(|| {
            let mut tb = small_tb(2);
            let cfg = AibConfig {
                bank: 0,
                attack: Attack::Hammer { count: 300_000 },
            };
            let recs =
                hammer::measure_victim_flips(&mut tb, cfg, 20, 19, &|_| u64::MAX, &|_| 0)
                    .unwrap();
            black_box(recs.len())
        })
    });
    c.bench_function("fig12/press_8k_and_read", |b| {
        b.iter(|| {
            let mut tb = small_tb(2);
            let cfg = AibConfig {
                bank: 0,
                attack: Attack::Press {
                    count: 8_000,
                    each_on: Time::from_ns(7_800),
                },
            };
            let recs =
                hammer::measure_victim_flips(&mut tb, cfg, 20, 19, &|_| u64::MAX, &|_| 0)
                    .unwrap();
            black_box(recs.len())
        })
    });
}

/// Fig. 14/15 kernel: H_cnt binary search.
fn bench_hcnt(c: &mut Criterion) {
    c.bench_function("fig15/hcnt_search", |b| {
        b.iter(|| {
            let mut tb = small_tb(3);
            let r = hammer::hcnt_for_cell(
                &mut tb,
                0,
                20,
                19,
                &|_| u64::MAX,
                &|_| 0,
                (0, 0),
                4_000_000,
            )
            .unwrap();
            black_box(r.trials)
        })
    });
}

/// Fig. 16 kernel: a 16-combination slice of the pattern sweep.
fn bench_fig16(c: &mut Criterion) {
    c.bench_function("fig16/nibble_sweep_16", |b| {
        b.iter(|| {
            let mut tb = small_tb(4);
            let gt = tb.chip().ground_truth();
            let layout =
                CellLayout::from_swizzle(&gt.swizzle, tb.chip().profile().row_bits, gt.mat_width);
            let cfg = AibConfig {
                bank: 0,
                attack: Attack::Hammer { count: 1_200_000 },
            };
            let mut total = 0usize;
            for aggr_nib in 0..16u8 {
                let vic = nibble_pattern_row(&layout, 0x3);
                let agg = nibble_pattern_row(&layout, aggr_nib);
                total += hammer::measure_victim_flips(
                    &mut tb,
                    cfg,
                    20,
                    19,
                    &|col| vic[col as usize],
                    &|col| agg[col as usize],
                )
                .unwrap()
                .len();
            }
            black_box(total)
        })
    });
}

/// §VI kernel: one tracked attack run.
fn bench_protection(c: &mut Criterion) {
    c.bench_function("sec6/tracked_attack", |b| {
        b.iter(|| {
            let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), 5));
            let mut mg = MisraGries::new(600_000, 16);
            let o = protect::run_attack(
                &mut tb,
                &mut mg,
                45,
                AttackStrategy::CoupledSplit { distance: 1024 },
                2_400_000,
                300_000,
            )
            .unwrap();
            black_box(o.mitigations)
        })
    });
}

/// Raw device kernels: command throughput and loop-accelerated bursts.
fn bench_device(c: &mut Criterion) {
    c.bench_function("device/write_read_row", |b| {
        let mut tb = small_tb(6);
        let mut row = 0u32;
        b.iter(|| {
            row = (row + 1) % 2048;
            tb.write_row_pattern(0, row, 0xA5A5_A5A5).unwrap();
            black_box(tb.read_row(0, row).unwrap().len())
        })
    });
    c.bench_function("device/hammer_burst_1m", |b| {
        let mut tb = small_tb(7);
        b.iter(|| {
            tb.hammer(0, 20, 1_000_000).unwrap();
            black_box(tb.now())
        })
    });
    c.bench_function("device/rowcopy", |b| {
        let mut tb = small_tb(8);
        tb.write_row_pattern(0, 2, 0x1234_5678).unwrap();
        b.iter(|| {
            tb.rowcopy(0, 2, 7).unwrap();
            black_box(tb.now())
        })
    });
}

/// §VI extensions: TRR probing, the power channel, and ECC decode.
fn bench_extensions(c: &mut Criterion) {
    c.bench_function("sec6/trr_windowed_attack", |b| {
        b.iter(|| {
            let mut tb =
                Testbed::new(DramChip::new(ChipProfile::test_small().with_trr(2), 9));
            let flips =
                dramscope_core::trr_re::windowed_attack(&mut tb, 0, 20, &[19, 21], 200_000, 4, true)
                    .unwrap();
            black_box(flips)
        })
    });
    c.bench_function("sec6/power_energy_scan", |b| {
        let mut tb = small_tb(10);
        b.iter(|| {
            let scan =
                dramscope_core::power_channel::energy_scan(&mut tb, 0, 0..512, 4).unwrap();
            black_box(scan.len())
        })
    });
    c.bench_function("sec6/ecc_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..256u32 {
                let data = i.wrapping_mul(0x9E37_79B9);
                let p = dram_sim::ecc::encode(data);
                let (d, _) = dram_sim::ecc::decode(data ^ 1, p);
                acc ^= d;
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table3, bench_fig7, bench_fig8, bench_attack_measure,
              bench_hcnt, bench_fig16, bench_protection, bench_device,
              bench_extensions
}
criterion_main!(benches);
