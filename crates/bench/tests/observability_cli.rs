//! End-to-end observability contract of the `characterize` CLI: a
//! `--journal` run followed by `characterize events <journal>` must
//! reconstruct the job lifecycle — every job with matched started /
//! finished events under consistent correlation ids — and the stable
//! rendering must be byte-identical across two identical runs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn characterize(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_characterize"))
        .args(args)
        .output()
        .expect("characterize binary spawns")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("characterize-obs-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the daemon over stdin with two identical characterize requests
/// (a cache miss then a hit) journaling to `journal`, and returns the
/// daemon's stdout.
fn serve_two_jobs(journal: &str) -> String {
    use std::io::Write;
    use std::process::Stdio;

    let mut child = Command::new(env!("CARGO_BIN_EXE_characterize"))
        // --serial keeps the two identical requests strictly ordered
        // (miss, then hit); pipelined would race them into a coalesce.
        .args(["serve", "--workers", "1", "--serial", "--journal", journal])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(
            b"{\"req\":\"characterize\",\"id\":\"first\",\"profile\":\"test_small\",\"seed\":5}\n\
              {\"req\":\"characterize\",\"id\":\"second\",\"profile\":\"test_small\",\"seed\":5}\n\
              {\"req\":\"shutdown\",\"id\":\"z\"}\n",
        )
        .expect("requests written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "{out:?}");
    String::from_utf8(out.stdout).expect("daemon output is UTF-8")
}

#[test]
fn journaled_run_reconstructs_a_matched_lifecycle() {
    let dir = tmpdir("sharded");
    let journal = dir.join("run.jsonl");
    let journal = journal.to_str().unwrap();
    let out = characterize(&["sharded", "test_small", "--quiet", "--journal", journal]);
    assert!(out.status.success(), "{out:?}");

    let out = characterize(&["events", journal]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"kind\":\"job.queued\",\"job\":\"test_small\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"kind\":\"job.started\",\"job\":\"test_small\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"kind\":\"job.finished\",\"job\":\"test_small\""),
        "{stdout}"
    );
    assert!(stdout.contains("| matched"), "{stdout}");
    assert!(stdout.contains("0 unmatched"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_journal_shows_miss_then_hit_and_is_stable_across_runs() {
    let dir = tmpdir("daemon");
    let j1 = dir.join("one.jsonl");
    let j2 = dir.join("two.jsonl");
    serve_two_jobs(j1.to_str().unwrap());
    serve_two_jobs(j2.to_str().unwrap());

    let out = characterize(&["events", j1.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The cache decision precedes the lifecycle it caused, and the
    // second identical request hits.
    let miss = stdout
        .find("\"kind\":\"cache.miss\",\"job\":\"first\"")
        .expect("miss logged");
    let started = stdout
        .find("\"kind\":\"job.started\",\"job\":\"first\"")
        .expect("start logged");
    let hit = stdout
        .find("\"kind\":\"cache.hit\",\"job\":\"second\"")
        .expect("hit logged");
    assert!(miss < started && started < hit, "{stdout}");
    assert!(stdout.contains("\"kind\":\"service.drained\""), "{stdout}");
    assert!(stdout.contains("0 unmatched"), "{stdout}");

    // Two identical daemon sessions journal byte-identical stable
    // renderings (wall-clock keys are quarantined in `wall`).
    let a = characterize(&["events", j1.to_str().unwrap(), "--stable", "--quiet"]);
    let b = characterize(&["events", j2.to_str().unwrap(), "--stable", "--quiet"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "stable tails diverged");
    let a_full = characterize(&["events", j1.to_str().unwrap(), "--stable"]);
    assert!(!String::from_utf8_lossy(&a_full.stdout).contains("\"wall\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn events_filters_and_errors_behave() {
    let dir = tmpdir("filters");
    let journal = dir.join("run.jsonl");
    let journal_s = journal.to_str().unwrap();
    let out = characterize(&["sharded", "test_small", "--quiet", "--journal", journal_s]);
    assert!(out.status.success(), "{out:?}");

    // Severity floor filters everything on a clean run.
    let out = characterize(&["events", journal_s, "--sev", "warn"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 matched filters"), "{stdout}");

    // A corrupt line is salvaged around, reported with its line number.
    let mut text = std::fs::read_to_string(&journal).unwrap();
    text.insert_str(0, "garbage\n");
    std::fs::write(&journal, text).unwrap();
    let out = characterize(&["events", journal_s]);
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 1"),
        "{out:?}"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 corrupt line(s)"));

    // Usage and runtime errors keep the CLI's exit-code contract.
    let out = characterize(&["events", journal_s, "--sev", "loud"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = characterize(&["events"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = characterize(&["events", "/nonexistent/never.jsonl"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
