//! Exit-code contract of the `characterize` CLI: usage errors (bad
//! flags, unknown names, missing operands) exit 2 in *every*
//! subcommand; runtime failures (unreadable files, failed gates) exit
//! 1. Pinned here so the convention cannot drift per-subcommand again.

use std::process::{Command, Output};

fn characterize(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_characterize"))
        .args(args)
        .output()
        .expect("characterize binary spawns")
}

fn assert_usage(args: &[&str], needle: &str) {
    let out = characterize(args);
    assert_eq!(out.status.code(), Some(2), "{args:?} -> {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
}

#[test]
fn usage_errors_exit_2_in_every_subcommand() {
    assert_usage(&["no_such_profile"], "unknown command or profile");
    assert_usage(&["sharded", "no_such_profile"], "unknown profile");
    assert_usage(&["record"], "record needs a profile name");
    assert_usage(&["record", "no_such_profile"], "unknown profile");
    assert_usage(&["replay"], "replay needs a trace file");
    assert_usage(&["diff", "only_one.trace"], "diff needs two trace files");
    assert_usage(&["dump"], "dump needs a trace file");
    assert_usage(&["stats"], "stats needs a trace file");
    assert_usage(&["bench", "--only", "no_such_suite"], "unknown suite");
    assert_usage(&["bench", "--gate", "20"], "--gate needs --baseline");
    assert_usage(&["serve", "bogus"], "serve does not take");
    assert_usage(&["index"], "index needs a trace file");
    assert_usage(&["query"], "query needs a trace file or directory");
    assert_usage(&["query", "x.trace", "--cmd", "bogus"], "unknown --cmd");
    assert_usage(&["query", "x.trace", "--bank", "minus"], "invalid --bank");
    assert_usage(
        &["query", "x.trace", "--bank", ","],
        "--bank needs at least one value",
    );
    assert_usage(
        &["query", "x.trace", "--from-ps", "9", "--to-ps", "3"],
        "--from-ps 9 is after --to-ps 3",
    );
}

#[test]
fn missing_and_malformed_flag_values_exit_2() {
    assert_usage(&["sharded", "test_small", "--seed"], "--seed needs a value");
    assert_usage(
        &["sharded", "test_small", "--seed", "not_a_number"],
        "invalid --seed value",
    );
    assert_usage(&["serve", "--workers"], "--workers needs a value");
    assert_usage(
        &["serve", "--workers", "minus_one"],
        "invalid --workers value",
    );
}

#[test]
fn runtime_failures_exit_1() {
    // A well-formed invocation whose input file does not exist is a
    // runtime failure, not a usage error.
    let out = characterize(&["replay", "/nonexistent/never.trace"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");

    let out = characterize(&["stats", "/nonexistent/never.trace"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    let out = characterize(&["index", "/nonexistent/never.trace"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // A directory without any *.trace files is a runtime failure too —
    // and distinct from a query that parses, runs, and matches nothing.
    let empty = std::env::temp_dir().join("characterize_query_empty_dir");
    std::fs::create_dir_all(&empty).expect("temp dir");
    let out = characterize(&["query", empty.to_str().expect("utf-8 temp path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no .trace files"), "{stderr}");
}

/// The trace-lake loop end to end: record (v2 by default), `index` a
/// `--v1` recording back up to v2, byte-identical `stats` across all
/// three, a matching query (exit 0) and a no-match query (exit 1).
#[test]
fn record_index_stats_and_query_round_trip() {
    let dir = std::env::temp_dir().join(format!("characterize_lake_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dir = dir.to_str().expect("utf-8 temp path");
    let v2 = format!("{dir}/run.trace");
    let v1 = format!("{dir}/plain.trace");

    let out = characterize(&["record", "test_small", "--quiet", "--out", &v2]);
    assert!(out.status.success(), "{out:?}");
    let out = characterize(&["record", "test_small", "--quiet", "--v1", "--out", &v1]);
    assert!(out.status.success(), "{out:?}");

    // The v2 container is the v1 stream plus a footer: strictly longer,
    // and its payload prefix is byte-identical.
    let v2_bytes = std::fs::read(&v2).expect("v2 written");
    let v1_bytes = std::fs::read(&v1).expect("v1 written");
    assert!(v2_bytes.len() > v1_bytes.len());
    assert_eq!(&v2_bytes[..v1_bytes.len()], &v1_bytes[..]);

    // `index` upgrades the v1 file; the result is byte-identical to the
    // directly recorded v2 container.
    let out = characterize(&["index", &v1]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("phase:structure"), "{stdout}");
    let upgraded = std::fs::read(format!("{dir}/plain.v2.trace")).expect("upgrade written");
    assert_eq!(upgraded, v2_bytes);

    // Stats must not depend on which container carried the events.
    let stats = |path: &str| {
        let out = characterize(&["stats", path]);
        assert!(out.status.success(), "{out:?}");
        out.stdout
    };
    assert_eq!(stats(&v2), stats(&v1));

    // Scoped stats decode fewer segments and say so.
    let out = characterize(&["stats", &v2, "--segment", "phase:power"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[filtered: 1 of"), "{stdout}");

    // One matching query, one well-formed no-match query.
    let out = characterize(&["query", dir, "--cmd", "act", "--bank", "0"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("phase:structure"), "{stdout}");
    let out = characterize(&["query", dir, "--cmd", "rfm"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("matched 0 event(s)"), "{stdout}");

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn serve_answers_one_job_over_stdin_and_exits_cleanly() {
    use std::io::Write;
    use std::process::Stdio;

    // --serial pins response order so the line-by-line assertions
    // below stay byte-deterministic.
    let mut child = Command::new(env!("CARGO_BIN_EXE_characterize"))
        .args(["serve", "--workers", "1", "--serial"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(
            b"{\"req\":\"characterize\",\"id\":\"c\",\"profile\":\"test_small\",\"seed\":5}\n\
              not json\n\
              {\"req\":\"shutdown\",\"id\":\"z\"}\n",
        )
        .expect("requests written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{lines:?}");
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(lines[1].contains("\"resp\":\"error\""), "{}", lines[1]);
    assert!(lines[2].contains("\"drained\":true"), "{}", lines[2]);
}

#[test]
fn serve_pipelined_answers_every_request_and_acks_last() {
    use std::io::Write;
    use std::process::Stdio;

    // The default (pipelined) mode may interleave responses, but every
    // request is answered, ids match, and the shutdown ack comes after
    // every outstanding response.
    let mut child = Command::new(env!("CARGO_BIN_EXE_characterize"))
        .args(["serve", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(
            b"{\"req\":\"characterize\",\"id\":\"a\",\"profile\":\"test_small\",\"seed\":5}\n\
              {\"req\":\"stats\",\"id\":\"s\"}\n\
              {\"req\":\"shutdown\",\"id\":\"z\"}\n",
        )
        .expect("requests written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{lines:?}");
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"id\":\"a\"") && l.contains("\"cache\":\"miss\"")),
        "{lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"resp\":\"stats\"") && l.contains("\"id\":\"s\"")),
        "{lines:?}"
    );
    assert!(
        lines.last().unwrap().contains("\"drained\":true"),
        "ack is last: {lines:?}"
    );
}
