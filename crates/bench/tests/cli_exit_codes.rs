//! Exit-code contract of the `characterize` CLI: usage errors (bad
//! flags, unknown names, missing operands) exit 2 in *every*
//! subcommand; runtime failures (unreadable files, failed gates) exit
//! 1. Pinned here so the convention cannot drift per-subcommand again.

use std::process::{Command, Output};

fn characterize(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_characterize"))
        .args(args)
        .output()
        .expect("characterize binary spawns")
}

fn assert_usage(args: &[&str], needle: &str) {
    let out = characterize(args);
    assert_eq!(out.status.code(), Some(2), "{args:?} -> {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
}

#[test]
fn usage_errors_exit_2_in_every_subcommand() {
    assert_usage(&["no_such_profile"], "unknown command or profile");
    assert_usage(&["sharded", "no_such_profile"], "unknown profile");
    assert_usage(&["record"], "record needs a profile name");
    assert_usage(&["record", "no_such_profile"], "unknown profile");
    assert_usage(&["replay"], "replay needs a trace file");
    assert_usage(&["diff", "only_one.trace"], "diff needs two trace files");
    assert_usage(&["dump"], "dump needs a trace file");
    assert_usage(&["stats"], "stats needs a trace file");
    assert_usage(&["bench", "--only", "no_such_suite"], "unknown suite");
    assert_usage(&["bench", "--gate", "20"], "--gate needs --baseline");
    assert_usage(&["serve", "bogus"], "serve does not take");
}

#[test]
fn missing_and_malformed_flag_values_exit_2() {
    assert_usage(&["sharded", "test_small", "--seed"], "--seed needs a value");
    assert_usage(
        &["sharded", "test_small", "--seed", "not_a_number"],
        "invalid --seed value",
    );
    assert_usage(&["serve", "--workers"], "--workers needs a value");
    assert_usage(
        &["serve", "--workers", "minus_one"],
        "invalid --workers value",
    );
}

#[test]
fn runtime_failures_exit_1() {
    // A well-formed invocation whose input file does not exist is a
    // runtime failure, not a usage error.
    let out = characterize(&["replay", "/nonexistent/never.trace"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");

    let out = characterize(&["stats", "/nonexistent/never.trace"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn serve_answers_one_job_over_stdin_and_exits_cleanly() {
    use std::io::Write;
    use std::process::Stdio;

    let mut child = Command::new(env!("CARGO_BIN_EXE_characterize"))
        .args(["serve", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(
            b"{\"req\":\"characterize\",\"id\":\"c\",\"profile\":\"test_small\",\"seed\":5}\n\
              not json\n\
              {\"req\":\"shutdown\",\"id\":\"z\"}\n",
        )
        .expect("requests written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{lines:?}");
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(lines[1].contains("\"resp\":\"error\""), "{}", lines[1]);
    assert!(lines[2].contains("\"drained\":true"), "{}", lines[2]);
}
