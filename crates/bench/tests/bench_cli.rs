//! End-to-end tests of the `characterize bench` subcommand: snapshot
//! writing, the regression gate's exit codes (the acceptance scenario:
//! gate against an unchanged snapshot passes, a doctored baseline
//! simulating a 2× slowdown fails), and usage errors.
//!
//! Only the cheap suites (`trace_decode`, `metrics_snapshot`) run here
//! so the test stays fast; the gate logic is identical for all suites.

use dram_perf::PerfSnapshot;
use std::path::PathBuf;
use std::process::{Command, Output};

fn characterize(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_characterize"))
        .args(args)
        .output()
        .expect("characterize binary spawns")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dramscope-bench-cli-{}-{name}", std::process::id()))
}

struct TempFile(PathBuf);

impl TempFile {
    fn new(name: &str) -> TempFile {
        TempFile(temp_path(name))
    }

    fn as_str(&self) -> &str {
        self.0.to_str().expect("temp path is valid UTF-8")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

const FAST: &[&str] = &[
    "bench",
    "--quiet",
    "--warmup",
    "0",
    "--iters",
    "1",
    "--only",
    "trace_decode,metrics_snapshot",
];

#[test]
fn save_writes_a_valid_snapshot_and_gating_against_it_passes() {
    let snap = TempFile::new("seed.json");
    let saved = characterize(&[FAST, &["--save", snap.as_str()]].concat());
    assert!(saved.status.success(), "{saved:?}");

    // The file round-trips through the schema validator and carries
    // exactly the selected suites.
    let snapshot = PerfSnapshot::load(snap.as_str()).expect("saved snapshot parses");
    let names: Vec<&str> = snapshot.suites.keys().map(String::as_str).collect();
    assert_eq!(names, ["metrics_snapshot", "trace_decode"]);
    for stats in snapshot.suites.values() {
        assert_eq!(stats.iters, 1);
        assert!(stats.median_ns > 0);
        assert!(stats.commands > 0);
    }

    // Gate against the just-written baseline: the tree is unchanged, so
    // the gate passes (generous threshold absorbs machine noise).
    let gated = characterize(&[FAST, &["--baseline", snap.as_str(), "--gate", "400"]].concat());
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert!(gated.status.success(), "{gated:?}");
    assert!(stdout.contains("verdict: PASS"), "{stdout}");
}

#[test]
fn doctored_baseline_simulating_a_2x_slowdown_fails_the_gate() {
    let snap = TempFile::new("doctored.json");
    let saved = characterize(&[FAST, &["--save", snap.as_str()]].concat());
    assert!(saved.status.success(), "{saved:?}");

    // Halve every baseline median: the (unchanged) current run then
    // reads as a 2× slowdown, far past a 20% gate.
    let mut baseline = PerfSnapshot::load(snap.as_str()).expect("snapshot parses");
    for stats in baseline.suites.values_mut() {
        stats.median_ns = (stats.median_ns / 2).max(1);
    }
    baseline
        .save(snap.as_str())
        .expect("doctored baseline saves");

    let gated = characterize(&[FAST, &["--baseline", snap.as_str(), "--gate", "20"]].concat());
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert_eq!(gated.status.code(), Some(1), "{gated:?}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("verdict: FAIL"), "{stdout}");
}

#[test]
fn unknown_suite_and_missing_baseline_are_usage_errors() {
    let unknown = characterize(&["bench", "--only", "no_such_suite"]);
    assert_eq!(unknown.status.code(), Some(2), "{unknown:?}");
    let stderr = String::from_utf8_lossy(&unknown.stderr);
    assert!(stderr.contains("unknown suite"), "{stderr}");

    // --gate without --baseline is an error, not a silent no-op.
    let gate_alone = characterize(&[FAST, &["--gate", "20"]].concat());
    assert!(!gate_alone.status.success(), "{gate_alone:?}");

    let missing = characterize(&[FAST, &["--baseline", "/nonexistent/BENCH.json"]].concat());
    assert!(!missing.status.success(), "{missing:?}");
    let stderr = String::from_utf8_lossy(&missing.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
