fn main() -> Result<(), Box<dyn std::error::Error>> {
    use dram_sim::{ChipProfile, DramChip};
    use dramscope_core::observations::ObservationSuite;
    use dramscope_core::patterns::CellLayout;

    let mut suite =
        ObservationSuite::with_profile_range(ChipProfile::mfr_a_x4_2021(), 0x5ca1e, 840, 896);
    let layout = suite.layout()?;
    let chip = DramChip::new(ChipProfile::mfr_a_x4_2021(), 0x5ca1e);
    let gt = chip.ground_truth();
    let truth = CellLayout::from_swizzle(&gt.swizzle, 4096, gt.mat_width);
    let k = layout.rd_bits() / (layout.row_bits() / layout.mat_width());
    println!("k = {k}");
    for m in 0..8u32 {
        let rec: Vec<u32> = (0..k).map(|i| layout.cell_at(m * 512 + i).1).collect();
        // find matching ground-truth mat
        let mut status = "NOT FOUND".to_string();
        for gm in 0..8u32 {
            let tru: Vec<u32> = (0..k).map(|i| truth.cell_at(gm * 512 + i).1).collect();
            let mut rev = tru.clone();
            rev.reverse();
            if rec == tru {
                status = format!("mat {gm} forward");
            }
            if rec == rev {
                status = format!("mat {gm} REVERSED");
            }
        }
        println!("recovered mat {m}: {rec:?} -> {status}");
    }
    Ok(())
}
