fn main() -> Result<(), Box<dyn std::error::Error>> {
    use dram_sim::{ChipProfile, DramChip};
    use dram_testbed::Testbed;
    use dramscope_core::hammer::Attack;
    use dramscope_core::swizzle_re::{influence_edges, ProbeSetup};

    // Mfr C x4 2018, interior subarray [688,1376): triples via ranges.
    let mut tb = Testbed::new(DramChip::new(ChipProfile::mfr_c_x4_2018(), 0x5ca1e));
    let setup = ProbeSetup::from_ranges(0, &[(690, 750)], Attack::Hammer { count: 2_600_000 });
    let edges = influence_edges(&mut tb, &setup)?;
    println!("edges: {}", edges.len());
    for e in edges.iter().take(24) {
        println!(
            "cand {:2} -> tgt {:2} dcol {:+}",
            e.candidate, e.target, e.dcol
        );
    }
    Ok(())
}
