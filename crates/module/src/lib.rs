//! # dram-module
//!
//! Module-level substrate for the DRAMScope reproduction: the parts of a
//! memory system that sit *between* the memory controller and the DRAM
//! dies and that quietly remap addresses and data — the source of the
//! "common pitfalls" in §III-C of the paper:
//!
//! 1. **RCD address inversion** ([`rcd`]): registered DIMMs invert part of
//!    the row/bank address for the B-side chips to reduce simultaneous
//!    switching current. Enabled by default, exactly as on real RDIMMs.
//! 2. **DQ twisting** ([`dq`]): the data pins of each chip are wired to
//!    module lanes in a per-chip permuted order, so writing `0x55` from
//!    the controller lands as `0x33`, `0xCC`, or `0x99` inside a chip.
//! 3. **MC address mapping** ([`mc`]): the physical-address to
//!    rank/bank/row/column slicing used for system-level attack scenarios.
//!
//! [`dimm::Dimm`] assembles simulated [`dram_sim::DramChip`]s behind these
//! layers and exposes a cache-line-wide command interface.
//!
//! # Example
//!
//! ```
//! use dram_module::{CacheLine, Dimm, ModuleCommand};
//! use dram_sim::{ChipProfile, Time};
//!
//! # fn main() -> Result<(), dram_module::ModuleError> {
//! let mut dimm = Dimm::new(ChipProfile::test_small(), 4, 99);
//! let mut t = Time::from_ns(20);
//! dimm.issue(ModuleCommand::Activate { bank: 0, row: 3 }, t)?;
//! t += dimm.timing().trcd;
//! dimm.issue(
//!     ModuleCommand::Write { bank: 0, col: 0, data: CacheLine::splat(0x55) },
//!     t,
//! )?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dimm;
pub mod dq;
pub mod mc;
pub mod rcd;
pub mod spd;

pub use dimm::{CacheLine, Dimm, ModuleCommand, ModuleError};
pub use dq::PinPermutation;
pub use mc::{AddressMapping, DramCoord};
pub use rcd::Rcd;
pub use spd::{AibDisclosure, Spd};
