//! DQ (data pin) twisting (common pitfall 3, paper §III-C, Fig. 5(c)).
//!
//! PCB routing connects each chip's DQ pins to the module's data lanes in
//! a permuted order. The permutation is disclosed in module datasheets but
//! differs per chip position, so a controller-side pattern like `0x55`
//! arrives at different chips as `0x33`, `0xCC`, or `0x99` unless the
//! experimenter compensates.

use std::fmt;

/// A permutation of a chip's DQ pins.
///
/// `lane_to_pin[lane]` is the chip pin wired to module lane `lane`
/// (lanes are numbered within the chip's nibble/byte).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PinPermutation {
    lane_to_pin: Vec<u8>,
    pin_to_lane: Vec<u8>,
}

impl PinPermutation {
    /// Creates a permutation from a lane→pin table.
    ///
    /// # Panics
    ///
    /// Panics if `lane_to_pin` is not a permutation of `0..len`.
    pub fn new(lane_to_pin: Vec<u8>) -> Self {
        let n = lane_to_pin.len();
        let mut pin_to_lane = vec![u8::MAX; n];
        for (lane, &pin) in lane_to_pin.iter().enumerate() {
            assert!((pin as usize) < n, "pin {pin} out of range");
            assert_eq!(pin_to_lane[pin as usize], u8::MAX, "duplicate pin {pin}");
            pin_to_lane[pin as usize] = lane as u8;
        }
        PinPermutation {
            lane_to_pin,
            pin_to_lane,
        }
    }

    /// The identity wiring.
    pub fn identity(pins: u32) -> Self {
        Self::new((0..pins as u8).collect())
    }

    /// The canonical per-position twist used by the modeled modules:
    /// chip positions cycle through identity, pair-swap, reversal, and
    /// rotate-by-2 wirings — the kind of variety real RDIMM datasheets
    /// document.
    pub fn for_chip_position(position: u32, pins: u32) -> Self {
        let p = pins as u8;
        let table: Vec<u8> = match position % 4 {
            0 => (0..p).collect(),
            1 => (0..p).map(|i| i ^ 1).collect(),
            2 => (0..p).map(|i| p - 1 - i).collect(),
            _ => (0..p).map(|i| (i + 2) % p).collect(),
        };
        Self::new(table)
    }

    /// Number of pins.
    pub fn pins(&self) -> u32 {
        self.lane_to_pin.len() as u32
    }

    /// The chip pin wired to a module lane.
    pub fn pin_of_lane(&self, lane: u32) -> u32 {
        self.lane_to_pin[lane as usize] as u32
    }

    /// The module lane wired to a chip pin.
    pub fn lane_of_pin(&self, pin: u32) -> u32 {
        self.pin_to_lane[pin as usize] as u32
    }

    /// Applies the twist to one beat of data: bit `lane` of the module's
    /// view becomes bit [`pin_of_lane`](Self::pin_of_lane)`(lane)` of the
    /// chip's view.
    pub fn module_to_chip_beat(&self, beat: u64) -> u64 {
        let mut out = 0u64;
        for lane in 0..self.pins() {
            if beat & (1 << lane) != 0 {
                out |= 1 << self.pin_of_lane(lane);
            }
        }
        out
    }

    /// Inverse of [`module_to_chip_beat`](Self::module_to_chip_beat).
    pub fn chip_to_module_beat(&self, beat: u64) -> u64 {
        let mut out = 0u64;
        for pin in 0..self.pins() {
            if beat & (1 << pin) != 0 {
                out |= 1 << self.lane_of_pin(pin);
            }
        }
        out
    }
}

impl fmt::Display for PinPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DQ[")?;
        for (i, p) in self.lane_to_pin.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_does_nothing() {
        let p = PinPermutation::identity(8);
        assert_eq!(p.module_to_chip_beat(0x55), 0x55);
        assert_eq!(p.chip_to_module_beat(0xA7), 0xA7);
    }

    #[test]
    fn pair_swap_turns_0x55_into_0xaa() {
        let p = PinPermutation::for_chip_position(1, 8);
        assert_eq!(p.module_to_chip_beat(0x55), 0xAA);
    }

    #[test]
    fn round_trip_for_all_positions() {
        for pos in 0..8 {
            for pins in [4u32, 8] {
                let p = PinPermutation::for_chip_position(pos, pins);
                for v in 0..(1u64 << pins) {
                    assert_eq!(p.chip_to_module_beat(p.module_to_chip_beat(v)), v);
                }
            }
        }
    }

    #[test]
    fn positions_differ() {
        let a = PinPermutation::for_chip_position(0, 8);
        let b = PinPermutation::for_chip_position(2, 8);
        assert_ne!(a, b);
        assert_ne!(a.module_to_chip_beat(0x0F), b.module_to_chip_beat(0x0F));
    }

    #[test]
    #[should_panic(expected = "duplicate pin")]
    fn rejects_non_permutations() {
        PinPermutation::new(vec![0, 0, 1, 2]);
    }
}
