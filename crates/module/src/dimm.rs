//! Module assembly: chips behind the RCD and the twisted DQ nets.

use crate::dq::PinPermutation;
use crate::rcd::{Rcd, Side};
use dram_sim::{ChipProfile, Command, CommandError, DramChip, Time, TimingParams};
use std::error::Error;
use std::fmt;

/// One burst of module-wide data: 8 beats of up to 64 lanes each.
///
/// On a real 64-bit DIMM this is a 64-byte cache line; narrower test
/// modules simply use fewer lanes per beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CacheLine(pub [u64; 8]);

impl CacheLine {
    /// A line with every beat equal to `beat` (e.g. a repeating byte
    /// pattern across all lanes).
    pub fn splat(beat: u64) -> Self {
        CacheLine([beat; 8])
    }

    /// Reads bit `lane` of beat `beat`.
    pub fn get(&self, beat: u32, lane: u32) -> bool {
        self.0[beat as usize] & (1 << lane) != 0
    }

    /// Writes bit `lane` of beat `beat`.
    pub fn set(&mut self, beat: u32, lane: u32, v: bool) {
        if v {
            self.0[beat as usize] |= 1 << lane;
        } else {
            self.0[beat as usize] &= !(1 << lane);
        }
    }
}

/// A module-level command (what the memory controller issues).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleCommand {
    /// Broadcast `ACT` (the RCD may invert the row for B-side chips).
    Activate {
        /// Bank index.
        bank: u32,
        /// Controller-side row address.
        row: u32,
    },
    /// Broadcast `PRE`.
    Precharge {
        /// Bank index.
        bank: u32,
    },
    /// Gather one cache-line burst.
    Read {
        /// Bank index.
        bank: u32,
        /// Column address.
        col: u32,
    },
    /// Scatter one cache-line burst.
    Write {
        /// Bank index.
        bank: u32,
        /// Column address.
        col: u32,
        /// Controller-side data.
        data: CacheLine,
    },
    /// Broadcast `REF`.
    Refresh,
}

/// An error from one of the module's chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleError {
    /// Index of the failing chip.
    pub chip: usize,
    /// The underlying chip error.
    pub error: CommandError,
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip {}: {}", self.chip, self.error)
    }
}

impl Error for ModuleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

/// A simulated (R)DIMM: `n` identical chips behind an RCD, with per-chip
/// DQ twisting. See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Dimm {
    chips: Vec<DramChip>,
    twists: Vec<PinPermutation>,
    rcd: Rcd,
    dq_pins: u32,
    beats: u32,
}

impl Dimm {
    /// Builds a module of `n_chips` chips sharing `profile`, each a
    /// distinct piece of silicon (seeded `seed`, `seed+1`, …).
    ///
    /// RCD inversion is **enabled** (the real-world default) and each chip
    /// position gets its standard DQ twist.
    ///
    /// # Panics
    ///
    /// Panics if `n_chips` is zero or the module would exceed 64 lanes.
    pub fn new(profile: ChipProfile, n_chips: u32, seed: u64) -> Self {
        assert!(n_chips > 0, "a module needs at least one chip");
        let dq_pins = profile.io_width.dq_pins();
        assert!(n_chips * dq_pins <= 64, "module exceeds 64 data lanes");
        let rd_bits = profile.io_width.rd_bits();
        let beats = rd_bits / dq_pins;
        let row_bits = 32 - (profile.rows_per_bank - 1).leading_zeros();
        let chips = (0..n_chips)
            .map(|i| DramChip::new(profile.clone(), seed.wrapping_add(i as u64)))
            .collect();
        let twists = (0..n_chips)
            .map(|i| PinPermutation::for_chip_position(i, dq_pins))
            .collect();
        Dimm {
            chips,
            twists,
            rcd: Rcd::new(true, row_bits),
            dq_pins,
            beats,
        }
    }

    /// Builds the standard RDIMM for the profile's width: 16 chips for ×4
    /// and 8 chips for ×8 (one 64-bit rank).
    pub fn rdimm(profile: ChipProfile, seed: u64) -> Self {
        let n = 64 / profile.io_width.dq_pins();
        Self::new(profile, n, seed)
    }

    /// Number of chips.
    pub fn chip_count(&self) -> usize {
        self.chips.len()
    }

    /// Shared chip profile.
    pub fn profile(&self) -> &ChipProfile {
        self.chips[0].profile()
    }

    /// Module timing (identical to the chips').
    pub fn timing(&self) -> &TimingParams {
        self.chips[0].timing()
    }

    /// Read-only access to one chip.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chip(&self, i: usize) -> &DramChip {
        &self.chips[i]
    }

    /// Mutable access to one chip (per-chip experiments, exactly like
    /// wiring a single chip to the FPGA testbed).
    pub fn chip_mut(&mut self, i: usize) -> &mut DramChip {
        &mut self.chips[i]
    }

    /// The module side a chip position is mounted on (first half A,
    /// second half B).
    pub fn side_of(&self, chip: usize) -> Side {
        if chip < self.chips.len() / 2 {
            Side::A
        } else {
            Side::B
        }
    }

    /// The RCD configuration — public datasheet information.
    pub fn rcd(&self) -> &Rcd {
        &self.rcd
    }

    /// The DQ twist of a chip position — public datasheet information.
    pub fn pin_map(&self, chip: usize) -> &PinPermutation {
        &self.twists[chip]
    }

    /// The row address chip `i` receives when the controller drives
    /// `row` — i.e. the combined RCD view.
    pub fn chip_row_address(&self, chip: usize, row: u32) -> u32 {
        self.rcd.chip_row(self.side_of(chip), row)
    }

    /// Runs one full refresh window on every chip (the accelerated
    /// equivalent of 8192 broadcast `REF` commands).
    ///
    /// # Errors
    ///
    /// Fails with the first chip error encountered.
    pub fn refresh_window(&mut self, at: Time) -> Result<(), ModuleError> {
        for i in 0..self.chips.len() {
            self.chips[i]
                .refresh_window(at)
                .map_err(|error| ModuleError { chip: i, error })?;
        }
        Ok(())
    }

    /// Issues a module command at timestamp `at`.
    ///
    /// # Errors
    ///
    /// Fails with the first chip error encountered; the module state may
    /// then be torn (as on real hardware after a protocol violation).
    pub fn issue(
        &mut self,
        cmd: ModuleCommand,
        at: Time,
    ) -> Result<Option<CacheLine>, ModuleError> {
        match cmd {
            ModuleCommand::Activate { bank, row } => {
                for i in 0..self.chips.len() {
                    let chip_row = self.chip_row_address(i, row);
                    self.chip_issue(
                        i,
                        Command::Activate {
                            bank,
                            row: chip_row,
                        },
                        at,
                    )?;
                }
                Ok(None)
            }
            ModuleCommand::Precharge { bank } => {
                for i in 0..self.chips.len() {
                    self.chip_issue(i, Command::Precharge { bank }, at)?;
                }
                Ok(None)
            }
            ModuleCommand::Refresh => {
                for i in 0..self.chips.len() {
                    self.chip_issue(i, Command::Refresh, at)?;
                }
                Ok(None)
            }
            ModuleCommand::Read { bank, col } => {
                let mut line = CacheLine::default();
                for i in 0..self.chips.len() {
                    let data = self
                        .chip_issue(i, Command::Read { bank, col }, at)?
                        .expect("read returns data");
                    self.scatter_chip_to_line(i, data.0, &mut line);
                }
                Ok(Some(line))
            }
            ModuleCommand::Write { bank, col, data } => {
                for i in 0..self.chips.len() {
                    let chip_data = self.gather_line_to_chip(i, &data);
                    self.chip_issue(
                        i,
                        Command::Write {
                            bank,
                            col,
                            data: chip_data,
                        },
                        at,
                    )?;
                }
                Ok(None)
            }
        }
    }

    fn chip_issue(
        &mut self,
        i: usize,
        cmd: Command,
        at: Time,
    ) -> Result<Option<dram_sim::ReadData>, ModuleError> {
        self.chips[i]
            .issue(cmd, at)
            .map_err(|error| ModuleError { chip: i, error })
    }

    /// Extracts chip `i`'s RD_data from a controller-side line, applying
    /// the DQ twist.
    pub fn gather_line_to_chip(&self, i: usize, line: &CacheLine) -> u64 {
        let base_lane = i as u32 * self.dq_pins;
        let mask = lane_mask(self.dq_pins);
        let mut out = 0u64;
        for beat in 0..self.beats {
            let lanes = (line.0[beat as usize] >> base_lane) & mask;
            let pins = self.twists[i].module_to_chip_beat(lanes);
            out |= pins << (beat * self.dq_pins);
        }
        out
    }

    /// Places chip `i`'s RD_data into a controller-side line, applying the
    /// inverse DQ twist.
    pub fn scatter_chip_to_line(&self, i: usize, chip_data: u64, line: &mut CacheLine) {
        let base_lane = i as u32 * self.dq_pins;
        let mask = lane_mask(self.dq_pins);
        for beat in 0..self.beats {
            let pins = (chip_data >> (beat * self.dq_pins)) & mask;
            let lanes = self.twists[i].chip_to_module_beat(pins);
            let word = &mut line.0[beat as usize];
            *word &= !(mask << base_lane);
            *word |= lanes << base_lane;
        }
    }
}

/// All-ones mask over `pins` low bits (handles the 64-pin HBM2 case).
fn lane_mask(pins: u32) -> u64 {
    if pins >= 64 {
        u64::MAX
    } else {
        (1u64 << pins) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dimm() -> Dimm {
        Dimm::new(ChipProfile::test_small(), 4, 11)
    }

    fn rw_cycle(d: &mut Dimm, row: u32, data: CacheLine) -> CacheLine {
        let t0 = latest(d) + d.timing().trp;
        d.issue(ModuleCommand::Activate { bank: 0, row }, t0)
            .unwrap();
        let t1 = t0 + d.timing().trcd;
        d.issue(
            ModuleCommand::Write {
                bank: 0,
                col: 0,
                data,
            },
            t1,
        )
        .unwrap();
        let t2 = t1 + d.timing().tck;
        let line = d
            .issue(ModuleCommand::Read { bank: 0, col: 0 }, t2)
            .unwrap()
            .unwrap();
        d.issue(
            ModuleCommand::Precharge { bank: 0 },
            t2.max(t0 + d.timing().tras) + d.timing().tck,
        )
        .unwrap();
        line
    }

    fn latest(d: &Dimm) -> Time {
        (0..d.chip_count())
            .map(|i| d.chip(i).now())
            .max()
            .unwrap_or(Time::ZERO)
    }

    #[test]
    fn module_round_trips_through_twists_and_rcd() {
        let mut d = dimm();
        let mut data = CacheLine::default();
        for beat in 0..8 {
            data.0[beat] = 0xA5F0_3C69 ^ (beat as u64) << 3;
        }
        let got = rw_cycle(&mut d, 100, data);
        // Only the module's 16 lanes are meaningful.
        for beat in 0..8 {
            assert_eq!(got.0[beat] & 0xFFFF, data.0[beat] & 0xFFFF, "beat {beat}");
        }
    }

    #[test]
    fn b_side_chips_receive_inverted_rows() {
        let d = dimm();
        assert_eq!(d.side_of(0), Side::A);
        assert_eq!(d.side_of(3), Side::B);
        assert_eq!(d.chip_row_address(0, 5), 5);
        assert_ne!(d.chip_row_address(3, 5), 5);
    }

    #[test]
    fn naive_pattern_differs_inside_chips() {
        // Writing 0x5 on every nibble lane does NOT land as 0x5 in every
        // chip — the classic pitfall.
        let d = dimm();
        let line = CacheLine::splat(0x5555); // 4 chips × 4 lanes
        let per_chip: Vec<u64> = (0..4).map(|i| d.gather_line_to_chip(i, &line)).collect();
        assert!(
            per_chip.iter().any(|&c| c != per_chip[0]),
            "at least one chip must see twisted data: {per_chip:?}"
        );
    }

    #[test]
    fn gather_scatter_are_inverse() {
        let d = dimm();
        for i in 0..4 {
            let chip_data = 0x1234_ABCD ^ (i as u64 * 7);
            let mut line = CacheLine::default();
            d.scatter_chip_to_line(i, chip_data, &mut line);
            assert_eq!(d.gather_line_to_chip(i, &line), chip_data);
        }
    }

    #[test]
    fn rdimm_uses_standard_chip_counts() {
        let d4 = Dimm::rdimm(ChipProfile::test_small(), 1);
        assert_eq!(d4.chip_count(), 16);
    }

    #[test]
    fn chip_errors_carry_their_index() {
        let mut d = dimm();
        let err = d
            .issue(ModuleCommand::Read { bank: 0, col: 0 }, Time::from_ns(50))
            .unwrap_err();
        assert_eq!(err.chip, 0);
        assert_eq!(err.error, CommandError::NoOpenRow);
    }
}
