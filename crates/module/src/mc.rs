//! Memory-controller physical-address mapping.
//!
//! System-level AIB attacks (memory templating/massaging, §VI-A of the
//! paper) reason about *physical addresses*; the controller slices them
//! into module coordinates. The default layout is
//! `| row | bank | column | line offset |` from MSB to LSB, with an
//! optional XOR bank hash (common on real controllers).

use std::fmt;

/// A decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DramCoord {
    /// Bank index.
    pub bank: u32,
    /// Controller-side row address.
    pub row: u32,
    /// Column (cache-line granularity).
    pub col: u32,
}

impl fmt::Display for DramCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank {} row {} col {}", self.bank, self.row, self.col)
    }
}

/// A physical-address to DRAM-coordinate mapping.
///
/// # Example
///
/// ```
/// use dram_module::{AddressMapping, DramCoord};
/// let m = AddressMapping::new(3, 4, 11, false);
/// let coord = DramCoord { bank: 2, row: 77, col: 5 };
/// assert_eq!(m.decompose(m.compose(coord)), coord);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    col_bits: u32,
    bank_bits: u32,
    row_bits: u32,
    bank_xor_hash: bool,
}

impl AddressMapping {
    /// Cache-line offset bits (64-byte lines).
    pub const LINE_OFFSET_BITS: u32 = 6;

    /// Creates a mapping with the given field widths. When
    /// `bank_xor_hash` is set, the bank field is XOR-folded with the low
    /// row bits (bank-permuting hash, as on Intel controllers).
    pub fn new(col_bits: u32, bank_bits: u32, row_bits: u32, bank_xor_hash: bool) -> Self {
        AddressMapping {
            col_bits,
            bank_bits,
            row_bits,
            bank_xor_hash,
        }
    }

    /// Total addressable bytes.
    pub fn capacity_bytes(&self) -> u64 {
        1u64 << (Self::LINE_OFFSET_BITS + self.col_bits + self.bank_bits + self.row_bits)
    }

    /// Decodes a physical address.
    pub fn decompose(&self, addr: u64) -> DramCoord {
        let a = addr >> Self::LINE_OFFSET_BITS;
        let col = (a & ((1 << self.col_bits) - 1)) as u32;
        let a = a >> self.col_bits;
        let mut bank = (a & ((1 << self.bank_bits) - 1)) as u32;
        let a = a >> self.bank_bits;
        let row = (a & ((1 << self.row_bits) - 1)) as u32;
        if self.bank_xor_hash {
            bank ^= row & ((1 << self.bank_bits) - 1);
        }
        DramCoord { bank, row, col }
    }

    /// Encodes a coordinate back to a physical address.
    pub fn compose(&self, coord: DramCoord) -> u64 {
        let mut bank = coord.bank;
        if self.bank_xor_hash {
            bank ^= coord.row & ((1 << self.bank_bits) - 1);
        }
        (((coord.row as u64) << self.bank_bits | bank as u64) << self.col_bits | coord.col as u64)
            << Self::LINE_OFFSET_BITS
    }

    /// Physical addresses mapping to the same bank as `addr` with the row
    /// offset by `delta` — the "same bank, adjacent row" step an attacker
    /// needs for templating.
    pub fn row_neighbor(&self, addr: u64, delta: i64) -> u64 {
        let mut c = self.decompose(addr);
        c.row = (c.row as i64 + delta).rem_euclid(1 << self.row_bits) as u32;
        self.compose(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_without_hash() {
        let m = AddressMapping::new(3, 4, 11, false);
        for addr in (0..m.capacity_bytes()).step_by(4096 + 64) {
            assert_eq!(m.compose(m.decompose(addr)), addr);
        }
    }

    #[test]
    fn round_trip_with_hash() {
        let m = AddressMapping::new(3, 4, 11, true);
        for addr in (0..m.capacity_bytes()).step_by(8192 + 64) {
            assert_eq!(m.compose(m.decompose(addr)), addr);
        }
    }

    #[test]
    fn hash_keeps_bank_stable_across_row_neighbors() {
        let m = AddressMapping::new(3, 4, 11, true);
        let addr = m.compose(DramCoord {
            bank: 5,
            row: 100,
            col: 2,
        });
        let up = m.decompose(m.row_neighbor(addr, 1));
        assert_eq!(up.bank, 5);
        assert_eq!(up.row, 101);
        assert_eq!(up.col, 2);
    }

    #[test]
    fn row_neighbor_wraps() {
        let m = AddressMapping::new(3, 4, 11, false);
        let addr = m.compose(DramCoord {
            bank: 0,
            row: 0,
            col: 0,
        });
        let down = m.decompose(m.row_neighbor(addr, -1));
        assert_eq!(down.row, (1 << 11) - 1);
    }

    #[test]
    fn fields_do_not_alias() {
        let m = AddressMapping::new(3, 4, 11, false);
        let a = m.compose(DramCoord {
            bank: 1,
            row: 2,
            col: 3,
        });
        let b = m.compose(DramCoord {
            bank: 2,
            row: 1,
            col: 3,
        });
        assert_ne!(a, b);
    }
}
