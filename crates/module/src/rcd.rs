//! The registered clock driver (RCD) of an RDIMM (common pitfall 1,
//! paper §III-C, Fig. 5(a)(b)).
//!
//! The RCD re-drives command/address signals to the chips on the module's
//! two sides. To cut simultaneous output switching current, the **B-side
//! copy of the address bus is inverted by default** (JEDEC DDR4RCD02).
//! Ignoring this when reverse-engineering produces classic artifacts:
//! apparent "direct non-adjacent RowHammer", half-rows, and misread spare
//! rows.

/// Which side of the DIMM a chip is mounted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Receives the address bus unmodified.
    A,
    /// Receives the (partially) inverted address bus when inversion is on.
    B,
}

/// The RCD configuration of a module.
///
/// # Example
///
/// ```
/// use dram_module::rcd::{Rcd, Side};
/// let rcd = Rcd::new(true, 17);
/// let pin = rcd.chip_row(Side::B, 0);
/// assert_ne!(pin, 0, "B-side rows are inverted by default");
/// assert_eq!(rcd.chip_row(Side::A, 0), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rcd {
    inversion_enabled: bool,
    row_bits: u32,
}

impl Rcd {
    /// Inversion covers the high row-address bits; the JEDEC scheme keeps
    /// the low bits (A0–A2, used for burst control) uninverted. We model
    /// that as leaving the low 3 bits alone.
    const UNINVERTED_LOW_BITS: u32 = 3;

    /// Creates an RCD for a module whose chips decode `row_bits` row bits.
    pub fn new(inversion_enabled: bool, row_bits: u32) -> Self {
        assert!(row_bits > Self::UNINVERTED_LOW_BITS);
        Rcd {
            inversion_enabled,
            row_bits,
        }
    }

    /// Whether B-side inversion is active (the power-on default on real
    /// RDIMMs).
    pub fn inversion_enabled(&self) -> bool {
        self.inversion_enabled
    }

    /// The mask of row-address bits that inversion flips.
    pub fn inversion_mask(&self) -> u32 {
        let all = (1u32 << self.row_bits) - 1;
        all & !((1 << Self::UNINVERTED_LOW_BITS) - 1)
    }

    /// The row address a chip on `side` actually receives when the
    /// controller drives `row`.
    pub fn chip_row(&self, side: Side, row: u32) -> u32 {
        match side {
            Side::A => row,
            Side::B => {
                if self.inversion_enabled {
                    row ^ self.inversion_mask()
                } else {
                    row
                }
            }
        }
    }

    /// Inverse of [`chip_row`](Self::chip_row): the controller-side row
    /// that reaches a chip on `side` as `pin_row`. (The transform is an
    /// involution, so this is the same operation.)
    pub fn controller_row(&self, side: Side, pin_row: u32) -> u32 {
        self.chip_row(side, pin_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_side_is_never_inverted() {
        let rcd = Rcd::new(true, 11);
        for r in [0u32, 1, 7, 8, 2047] {
            assert_eq!(rcd.chip_row(Side::A, r), r);
        }
    }

    #[test]
    fn b_side_inverts_high_bits_only() {
        let rcd = Rcd::new(true, 11);
        assert_eq!(rcd.chip_row(Side::B, 0), 0b111_1111_1000);
        assert_eq!(rcd.chip_row(Side::B, 0b101), 0b111_1111_1101);
    }

    #[test]
    fn disabled_inversion_is_identity() {
        let rcd = Rcd::new(false, 11);
        for r in 0..2048 {
            assert_eq!(rcd.chip_row(Side::B, r), r);
        }
    }

    #[test]
    fn inversion_is_an_involution() {
        let rcd = Rcd::new(true, 11);
        for r in 0..2048 {
            let pin = rcd.chip_row(Side::B, r);
            assert_eq!(rcd.controller_row(Side::B, pin), r);
        }
    }

    #[test]
    fn adjacent_controller_rows_stay_adjacent_on_chip() {
        // Inversion preserves *pairwise distance within the low bits* but
        // reverses the ordering of high blocks — the signature the paper's
        // "non-adjacent RowHammer" artifact comes from.
        let rcd = Rcd::new(true, 11);
        let a = rcd.chip_row(Side::B, 100);
        let b = rcd.chip_row(Side::B, 101);
        assert_eq!(a.abs_diff(b), 1);
        let c = rcd.chip_row(Side::B, 103);
        let d = rcd.chip_row(Side::B, 104);
        assert_ne!(c.abs_diff(d), 1, "crossing bit 3 jumps after inversion");
    }
}
