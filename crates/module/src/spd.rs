//! Serial Presence Detect (SPD) with optional vendor disclosures.
//!
//! The paper's §VI-B proposes that "if the DRAM manufacturers disclose
//! the coupled-row relationship information in either the DRAM chip's
//! mode register or the DRAM module's Serial Presence Detect chip, an MC
//! can read the information … and effectively track both coupled-row
//! activations as a single aggressor row's activation."
//!
//! [`Spd`] models that channel: standard identification fields every
//! real module carries, plus the *optional* AIB-relevant disclosures the
//! paper asks vendors for. A controller builds its defenses from
//! whatever the vendor chose to publish.

use dram_sim::{ChipProfile, IoWidth, Vendor};

/// The vendor's optional AIB-relevant disclosures (paper §VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AibDisclosure {
    /// Coupled-row distance in row addresses, if the device couples rows
    /// and the vendor chose to disclose it.
    pub coupled_row_distance: Option<u32>,
    /// Whether the device implements an in-DRAM mitigation reachable via
    /// `RFM` (so the controller knows RFM commands are not wasted).
    pub rfm_capable: bool,
}

/// A module's SPD contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spd {
    /// Module manufacturer.
    pub vendor: Vendor,
    /// Device width.
    pub io_width: IoWidth,
    /// Density per chip in gigabits.
    pub density_gbit: u32,
    /// Rows per bank (standard addressing fields).
    pub rows_per_bank: u32,
    /// Banks per chip.
    pub banks: u32,
    /// The optional vulnerability-relevant disclosures.
    pub disclosure: AibDisclosure,
}

impl Spd {
    /// The SPD a vendor ships *without* any AIB disclosure (today's
    /// practice, which the paper criticizes as "the price of secrecy").
    pub fn undisclosed(profile: &ChipProfile) -> Self {
        Spd {
            vendor: profile.vendor,
            io_width: profile.io_width,
            density_gbit: profile.density_gbit,
            rows_per_bank: profile.rows_per_bank,
            banks: profile.banks,
            disclosure: AibDisclosure::default(),
        }
    }

    /// The SPD the paper asks for: the same identification fields plus
    /// the coupled-row relationship (taken from the device itself — the
    /// vendor knows its own silicon) and RFM capability.
    pub fn with_disclosure(profile: &ChipProfile, chip: &dram_sim::DramChip) -> Self {
        let gt = chip.ground_truth();
        Spd {
            disclosure: AibDisclosure {
                coupled_row_distance: gt.coupled_distance,
                rfm_capable: true,
            },
            ..Self::undisclosed(profile)
        }
    }

    /// Whether a controller reading this SPD can configure coupled-aware
    /// tracking without reverse engineering.
    pub fn enables_coupled_tracking(&self) -> bool {
        self.disclosure.coupled_row_distance.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::DramChip;

    #[test]
    fn undisclosed_spd_hides_coupling() {
        let p = ChipProfile::mfr_a_x4_2016();
        let spd = Spd::undisclosed(&p);
        assert_eq!(spd.vendor, Vendor::A);
        assert_eq!(spd.disclosure.coupled_row_distance, None);
        assert!(!spd.enables_coupled_tracking());
    }

    #[test]
    fn disclosed_spd_carries_the_coupling_distance() {
        let p = ChipProfile::mfr_a_x4_2016();
        let chip = DramChip::new(p.clone(), 1);
        let spd = Spd::with_disclosure(&p, &chip);
        assert_eq!(spd.disclosure.coupled_row_distance, Some(64 << 10));
        assert!(spd.disclosure.rfm_capable);
        assert!(spd.enables_coupled_tracking());
    }

    #[test]
    fn uncoupled_devices_disclose_nothing_to_track() {
        let p = ChipProfile::mfr_a_x4_2018();
        let chip = DramChip::new(p.clone(), 1);
        let spd = Spd::with_disclosure(&p, &chip);
        assert_eq!(spd.disclosure.coupled_row_distance, None);
        assert!(!spd.enables_coupled_tracking());
    }
}
