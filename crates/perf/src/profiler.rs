//! Hierarchical wall-clock profiling over phase/span markers.
//!
//! The simulator's probe pipelines already announce their structure as
//! out-of-band markers — `phase:<name>` for the flat characterization
//! phases and `span:<name>:enter` / `span:<name>:exit` for nested scopes
//! (see [`dram_telemetry::parse_marker`]). The deterministic telemetry
//! layer folds those into flat per-name *simulated-time* totals; this
//! module folds the same stream, annotated with host-clock timestamps,
//! into a **tree**: who called whom, how often, and where the host time
//! actually went.
//!
//! A [`Profiler`] consumes `(marker, wall_ns, sim_ps, commands)` tuples
//! and yields a [`SpanTree`] whose nodes carry call counts, total and
//! self wall time, simulated-time and command deltas, and the derived
//! throughput figures (commands/sec, simulated nanoseconds per host
//! microsecond). Output comes in three shapes: an indented text tree, a
//! nested JSON document, and collapsed-stack lines ready for
//! `flamegraph.pl`.
//!
//! Determinism contract: the *structure* of the tree — node names,
//! ordering, call counts, command and simulated-time totals — is a pure
//! function of the (deterministic) marker stream, so it is byte-stable
//! across runs; only the wall-clock fields vary. The structure-only
//! rendering is exposed as [`SpanTree::structure_signature`] and is what
//! regression tests pin.
//!
//! Robustness contract (the `TraceError` discipline, applied to
//! markers): no input stream panics the profiler. Exits without a
//! matching enter are counted and dropped; enters without an exit are
//! closed at [`Profiler::finish`]; an exit that skips over open inner
//! spans closes those inner spans at the same instant.

use dram_telemetry::{parse_marker, MarkerKind};

/// Name given to the synthetic root node covering the whole run.
pub const ROOT_NAME: &str = "run";

/// One node of a finished [`SpanTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Phase (`phase:<name>`) or span name.
    pub name: String,
    /// Times this node was entered.
    pub calls: u64,
    /// Total wall-clock time spent below this node, nanoseconds.
    pub wall_ns: u64,
    /// Simulated time covered while this node was open, picoseconds.
    pub sim_ps: u64,
    /// Accepted pin-level commands issued while this node was open.
    pub commands: u64,
    /// Child nodes, in first-entered order (deterministic for a
    /// deterministic marker stream).
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &str) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            calls: 0,
            wall_ns: 0,
            sim_ps: 0,
            commands: 0,
            children: Vec::new(),
        }
    }

    /// Wall time attributable to this node alone: total minus children.
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.wall_ns).sum();
        self.wall_ns.saturating_sub(children)
    }

    /// Commands per host second over this node's total wall time.
    pub fn commands_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.commands as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Simulated nanoseconds advanced per host microsecond spent — the
    /// "how much faster than real time does the simulator run" figure.
    pub fn sim_ns_per_host_us(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (self.sim_ps as f64 / 1e3) / (self.wall_ns as f64 / 1e3)
    }
}

/// An open frame: the tree node it accumulates into plus the clock
/// readings at entry.
#[derive(Debug, Clone)]
struct Frame {
    /// Index path from the root to the node (child indices level by
    /// level), stable because nodes are never removed while building.
    path: Vec<usize>,
    name: String,
    /// Phases sit directly under the root and are switched, not nested.
    is_phase: bool,
    start_wall_ns: u64,
    start_sim_ps: u64,
    start_commands: u64,
}

/// Builds a [`SpanTree`] from a marker stream. See the [module
/// docs](self) for the determinism and robustness contracts.
#[derive(Debug, Clone)]
pub struct Profiler {
    root: SpanNode,
    stack: Vec<Frame>,
    unmatched_exits: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// Creates a profiler with an open root frame starting at zero.
    pub fn new() -> Profiler {
        let mut root = SpanNode::new(ROOT_NAME);
        root.calls = 1;
        Profiler {
            root,
            stack: Vec::new(),
            unmatched_exits: 0,
        }
    }

    fn node_mut(&mut self, path: &[usize]) -> &mut SpanNode {
        let mut node = &mut self.root;
        for &i in path {
            node = &mut node.children[i];
        }
        node
    }

    /// Opens a frame named `name` under the current innermost frame.
    pub fn enter(&mut self, name: &str, wall_ns: u64, sim_ps: u64, commands: u64) {
        self.open(name, false, wall_ns, sim_ps, commands);
    }

    /// Switches to phase `name`: closes every open frame (phases are
    /// flat and live directly under the root) and opens `phase:<name>`.
    pub fn phase(&mut self, name: &str, wall_ns: u64, sim_ps: u64, commands: u64) {
        while !self.stack.is_empty() {
            self.close_top(wall_ns, sim_ps, commands);
        }
        self.open(&format!("phase:{name}"), true, wall_ns, sim_ps, commands);
    }

    fn open(&mut self, name: &str, is_phase: bool, wall_ns: u64, sim_ps: u64, commands: u64) {
        let parent_path = self
            .stack
            .last()
            .map(|f| f.path.clone())
            .unwrap_or_default();
        let parent = self.node_mut(&parent_path);
        let child = match parent.children.iter().position(|c| c.name == name) {
            Some(i) => i,
            None => {
                parent.children.push(SpanNode::new(name));
                parent.children.len() - 1
            }
        };
        parent.children[child].calls += 1;
        let mut path = parent_path;
        path.push(child);
        self.stack.push(Frame {
            path,
            name: name.to_string(),
            is_phase,
            start_wall_ns: wall_ns,
            start_sim_ps: sim_ps,
            start_commands: commands,
        });
    }

    fn close_top(&mut self, wall_ns: u64, sim_ps: u64, commands: u64) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let node = self.node_mut(&frame.path);
        node.wall_ns += wall_ns.saturating_sub(frame.start_wall_ns);
        node.sim_ps += sim_ps.saturating_sub(frame.start_sim_ps);
        node.commands += commands.saturating_sub(frame.start_commands);
    }

    /// Closes the innermost open span named `name`, closing any frames
    /// nested inside it at the same instant. Phases are skipped (only a
    /// phase switch or `finish` ends a phase). An exit with no matching
    /// open span is counted in `unmatched_exits` and otherwise ignored.
    pub fn exit(&mut self, name: &str, wall_ns: u64, sim_ps: u64, commands: u64) {
        let target = self
            .stack
            .iter()
            .rposition(|f| !f.is_phase && f.name == name);
        let Some(target) = target else {
            self.unmatched_exits += 1;
            return;
        };
        while self.stack.len() > target {
            self.close_top(wall_ns, sim_ps, commands);
        }
    }

    /// Routes a marker label through [`parse_marker`]: phases switch,
    /// spans enter/exit, free-form markers are ignored.
    pub fn observe_marker(&mut self, label: &str, wall_ns: u64, sim_ps: u64, commands: u64) {
        match parse_marker(label) {
            Some(MarkerKind::Phase(name)) => self.phase(name, wall_ns, sim_ps, commands),
            Some(MarkerKind::SpanEnter(name)) => self.enter(name, wall_ns, sim_ps, commands),
            Some(MarkerKind::SpanExit(name)) => self.exit(name, wall_ns, sim_ps, commands),
            None => {}
        }
    }

    /// Exits observed with no matching open span so far.
    pub fn unmatched_exits(&self) -> u64 {
        self.unmatched_exits
    }

    /// Closes every open frame and the root at the given final clock
    /// readings and returns the finished tree.
    pub fn finish(mut self, wall_ns: u64, sim_ps: u64, commands: u64) -> SpanTree {
        while !self.stack.is_empty() {
            self.close_top(wall_ns, sim_ps, commands);
        }
        self.root.wall_ns = wall_ns;
        self.root.sim_ps = sim_ps;
        self.root.commands = commands;
        SpanTree {
            root: self.root,
            unmatched_exits: self.unmatched_exits,
        }
    }
}

/// A finished profile: the span tree plus stream-hygiene counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// The synthetic root covering the whole run; real phases/spans are
    /// its descendants.
    pub root: SpanNode,
    /// Span exits that never matched an open span.
    pub unmatched_exits: u64,
}

impl SpanTree {
    /// Renders the tree as indented text: per node, total and self wall
    /// time, call count, commands, and the derived rates.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "span tree (wall total / self · calls · commands · cmds/s · sim-ns/host-µs)\n",
        );
        render_text(&self.root, 0, &mut out);
        if self.unmatched_exits > 0 {
            out.push_str(&format!(
                "({} unmatched span exit(s) ignored)\n",
                self.unmatched_exits
            ));
        }
        out
    }

    /// Renders the tree as one nested JSON document (deterministic field
    /// order; wall-dependent fields are the only ones that vary between
    /// identical runs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"dramscope.perf.spans\",\"version\":1,");
        out.push_str(&format!(
            "\"unmatched_exits\":{},\"root\":",
            self.unmatched_exits
        ));
        render_json(&self.root, &mut out);
        out.push('}');
        out
    }

    /// Renders collapsed-stack lines (`a;b;c <self_ns>`), the input
    /// format of `flamegraph.pl` and compatible viewers. Values are
    /// self-time nanoseconds; zero-self nodes are skipped.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        let mut stack = Vec::new();
        render_collapsed(&self.root, &mut stack, &mut out);
        out
    }

    /// The structure-only rendering: names, nesting, ordering, call
    /// counts, commands, and simulated time — everything that must be
    /// byte-stable across identical runs. Wall-clock fields are omitted.
    pub fn structure_signature(&self) -> String {
        let mut out = String::new();
        render_structure(&self.root, 0, &mut out);
        out.push_str(&format!("unmatched_exits={}\n", self.unmatched_exits));
        out
    }
}

fn render_text(node: &SpanNode, depth: usize, out: &mut String) {
    let ms = |ns: u64| ns as f64 / 1e6;
    out.push_str(&format!(
        "{:indent$}{:<24} {:>9.3} ms / {:>9.3} ms · {:>5} · {:>10} · {:>12.0} · {:>8.1}\n",
        "",
        node.name,
        ms(node.wall_ns),
        ms(node.self_ns()),
        node.calls,
        node.commands,
        node.commands_per_sec(),
        node.sim_ns_per_host_us(),
        indent = depth * 2,
    ));
    for child in &node.children {
        render_text(child, depth + 1, out);
    }
}

fn render_json(node: &SpanNode, out: &mut String) {
    out.push_str(&format!(
        "{{\"name\":{},\"calls\":{},\"wall_ns\":{},\"self_ns\":{},\
         \"sim_ps\":{},\"commands\":{},\"children\":[",
        json_string(&node.name),
        node.calls,
        node.wall_ns,
        node.self_ns(),
        node.sim_ps,
        node.commands,
    ));
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_json(child, out);
    }
    out.push_str("]}");
}

fn render_collapsed(node: &SpanNode, stack: &mut Vec<String>, out: &mut String) {
    // Frame names in collapsed format must not contain ';' or whitespace.
    let frame: String = node
        .name
        .chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect();
    stack.push(frame);
    let self_ns = node.self_ns();
    if self_ns > 0 {
        out.push_str(&stack.join(";"));
        out.push_str(&format!(" {self_ns}\n"));
    }
    for child in &node.children {
        render_collapsed(child, stack, out);
    }
    stack.pop();
}

fn render_structure(node: &SpanNode, depth: usize, out: &mut String) {
    out.push_str(&format!(
        "{:indent$}{} calls={} commands={} sim_ps={}\n",
        "",
        node.name,
        node.calls,
        node.commands,
        node.sim_ps,
        indent = depth * 2,
    ));
    for child in &node.children {
        render_structure(child, depth + 1, out);
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a profiler from a compact script: `(label, wall_ns)`
    /// pairs; sim time advances 10 ps and commands 1 per step.
    fn run_script(steps: &[(&str, u64)]) -> SpanTree {
        let mut p = Profiler::new();
        for (i, (label, wall)) in steps.iter().enumerate() {
            let i = i as u64 + 1;
            p.observe_marker(label, *wall, i * 10, i);
        }
        let end = steps.len() as u64;
        p.finish(
            steps.last().map_or(0, |s| s.1) + 100,
            end * 10 + 10,
            end + 1,
        )
    }

    #[test]
    fn nested_spans_build_a_tree_with_self_time() {
        let t = run_script(&[
            ("span:outer:enter", 0),
            ("span:inner:enter", 100),
            ("span:inner:exit", 300),
            ("span:inner:enter", 400),
            ("span:inner:exit", 450),
            ("span:outer:exit", 1_000),
        ]);
        assert_eq!(t.unmatched_exits, 0);
        assert_eq!(t.root.children.len(), 1);
        let outer = &t.root.children[0];
        assert_eq!(
            (outer.name.as_str(), outer.calls, outer.wall_ns),
            ("outer", 1, 1_000)
        );
        let inner = &outer.children[0];
        assert_eq!(
            (inner.name.as_str(), inner.calls, inner.wall_ns),
            ("inner", 2, 250)
        );
        assert_eq!(outer.self_ns(), 750);
        // outer covers steps 1..6: commands 6 - 1 = 5, sim 60 - 10 = 50.
        assert_eq!((outer.commands, outer.sim_ps), (5, 50));
    }

    #[test]
    fn phases_are_flat_under_the_root_and_close_loose_spans() {
        let t = run_script(&[
            ("phase:structure", 0),
            ("span:probe:enter", 10),
            // Phase switch with `probe` still open: probe closes here.
            ("phase:power", 500),
            ("phase:structure", 900),
        ]);
        let names: Vec<&str> = t.root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["phase:structure", "phase:power"]);
        let structure = &t.root.children[0];
        // Re-entering a phase accumulates into the same node.
        assert_eq!(structure.calls, 2);
        assert_eq!(structure.children[0].name, "probe");
        assert_eq!(structure.children[0].wall_ns, 490);
    }

    #[test]
    fn unmatched_exits_are_counted_not_fatal() {
        let t = run_script(&[
            ("span:a:exit", 10),
            ("span:b:enter", 20),
            ("span:b:exit", 30),
            ("span:b:exit", 40),
        ]);
        assert_eq!(t.unmatched_exits, 2);
        assert_eq!(t.root.children.len(), 1);
        assert!(t.to_text().contains("2 unmatched span exit(s)"));
    }

    #[test]
    fn interleaved_exits_close_inner_frames_at_the_same_instant() {
        // enter a, enter b, exit a — b must close when a does.
        let t = run_script(&[
            ("span:a:enter", 0),
            ("span:b:enter", 100),
            ("span:a:exit", 500),
        ]);
        assert_eq!(t.unmatched_exits, 0);
        let a = &t.root.children[0];
        assert_eq!(a.wall_ns, 500);
        assert_eq!(a.children[0].name, "b");
        assert_eq!(a.children[0].wall_ns, 400);
    }

    #[test]
    fn dangling_enters_close_at_finish_and_recursion_nests() {
        let mut p = Profiler::new();
        p.enter("f", 0, 0, 0);
        p.enter("f", 10, 5, 1);
        p.exit("f", 20, 8, 2);
        // Outer `f` left open; finish closes it.
        let t = p.finish(100, 50, 9);
        let f = &t.root.children[0];
        assert_eq!((f.calls, f.wall_ns), (1, 100));
        assert_eq!(
            (f.children[0].name.as_str(), f.children[0].wall_ns),
            ("f", 10)
        );
        assert_eq!(t.root.wall_ns, 100);
        assert_eq!(t.root.commands, 9);
    }

    #[test]
    fn time_reversed_markers_saturate_instead_of_panicking() {
        let mut p = Profiler::new();
        p.enter("x", 1_000, 500, 10);
        p.exit("x", 400, 200, 3); // wall/sim/commands all go backwards
        let t = p.finish(0, 0, 0);
        let x = &t.root.children[0];
        assert_eq!((x.wall_ns, x.sim_ps, x.commands), (0, 0, 0));
        assert_eq!(x.self_ns(), 0);
    }

    #[test]
    fn free_form_markers_are_ignored() {
        let t = run_script(&[("program:write-read", 5), ("span:unterminated", 7)]);
        assert!(t.root.children.is_empty());
        assert_eq!(t.unmatched_exits, 0);
    }

    #[test]
    fn structure_signature_is_wall_clock_free_and_stable() {
        let script = [
            ("phase:structure", 0u64),
            ("span:probe:enter", 10),
            ("span:probe:exit", 60),
            ("phase:remap", 100),
        ];
        // Same stream, wildly different wall clocks.
        let slow: Vec<(&str, u64)> = script.iter().map(|(l, w)| (*l, w * 997)).collect();
        let a = run_script(&script);
        let b = run_script(&slow);
        assert_eq!(a.structure_signature(), b.structure_signature());
        assert_ne!(a.to_json(), b.to_json(), "wall fields do differ");
        let sig = a.structure_signature();
        assert!(sig.contains("phase:structure calls=1"), "{sig}");
        assert!(sig.contains("  probe calls=1"), "{sig}");
    }

    #[test]
    fn renderings_cover_text_json_and_collapsed() {
        let t = run_script(&[
            ("phase:structure", 0),
            ("span:probe:enter", 100),
            ("span:probe:exit", 600),
            ("phase:power", 1_000),
        ]);
        let text = t.to_text();
        assert!(text.contains("phase:structure"), "{text}");
        assert!(text.contains("probe"), "{text}");

        let json = t.to_json();
        assert!(
            json.starts_with("{\"schema\":\"dramscope.perf.spans\""),
            "{json}"
        );
        assert!(json.contains("\"name\":\"probe\""), "{json}");
        // The JSON parses back with this crate's own reader.
        let v = crate::json::parse("spans.json", &json).expect("self-parse");
        assert_eq!(
            v.as_object().unwrap()["root"].as_object().unwrap()["name"].as_str(),
            Some(ROOT_NAME)
        );

        let collapsed = t.to_collapsed();
        assert!(
            collapsed.contains("run;phase:structure;probe 500\n"),
            "{collapsed}"
        );
        // Every line is `stack<space>integer`.
        for line in collapsed.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("two fields");
            assert!(!stack.is_empty());
            value.parse::<u64>().expect("integer value");
        }
    }
}
