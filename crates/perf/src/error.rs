//! The error type for snapshot I/O, parsing, and gating.
//!
//! Mirrors the `TraceError` discipline from `dram-trace`: every way a
//! snapshot file can be missing, unreadable, malformed, or semantically
//! wrong maps to a [`PerfError`] variant that names the file and (for
//! parse failures) the byte offset where reading stopped. Nothing in
//! this crate panics on hostile input.

use std::error::Error;
use std::fmt;

/// Any failure surfaced by the perf harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfError {
    /// A filesystem operation on a snapshot file failed.
    Io {
        /// What was being attempted (`"read"`, `"write"`).
        op: &'static str,
        /// The file involved.
        path: String,
        /// The OS error, rendered.
        message: String,
    },
    /// A snapshot file is not valid JSON.
    Parse {
        /// The file involved.
        path: String,
        /// Byte offset at which parsing stopped.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// A snapshot file parsed as JSON but does not follow the
    /// `dramscope.perf` schema.
    Schema {
        /// The file involved.
        path: String,
        /// Which schema expectation was violated.
        what: String,
    },
    /// A gate run was asked for but the inputs make it meaningless
    /// (e.g. the baseline and current snapshots share no suite).
    Gate(String),
}

impl PerfError {
    /// Wraps an `std::io::Error` with the operation and path that failed.
    pub fn io(op: &'static str, path: &str, err: &std::io::Error) -> PerfError {
        PerfError::Io {
            op,
            path: path.to_string(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::Io { op, path, message } => {
                write!(f, "cannot {op} {path}: {message}")
            }
            PerfError::Parse { path, offset, what } => {
                write!(f, "{path}: invalid JSON at byte {offset}: {what}")
            }
            PerfError::Schema { path, what } => {
                write!(f, "{path}: not a dramscope.perf snapshot: {what}")
            }
            PerfError::Gate(m) => write!(f, "perf gate: {m}"),
        }
    }
}

impl Error for PerfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = PerfError::io(
            "read",
            "BENCH_seed.json",
            &std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
        );
        assert_eq!(e.to_string(), "cannot read BENCH_seed.json: no such file");

        let p = PerfError::Parse {
            path: "b.json".into(),
            offset: 17,
            what: "expected ':'",
        };
        assert_eq!(
            p.to_string(),
            "b.json: invalid JSON at byte 17: expected ':'"
        );

        let s = PerfError::Schema {
            path: "b.json".into(),
            what: "missing \"suites\"".into(),
        };
        assert!(s.to_string().contains("not a dramscope.perf snapshot"));
        assert!(PerfError::Gate("no common suites".into())
            .to_string()
            .starts_with("perf gate:"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<PerfError>();
    }
}
