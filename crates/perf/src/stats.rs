//! Order statistics over benchmark samples.
//!
//! Small-N behaviour is the whole point: a CI smoke run takes one
//! sample, a full run five to a few dozen, so every statistic must be
//! well-defined from N = 1 up. The conventions, fixed here and tested
//! below:
//!
//! * `min` — smallest sample;
//! * `median` — lower-midpoint for even N (the `N/2 - 1`-th order
//!   statistic averaged with the `N/2`-th, rounded down), so the result
//!   stays an integer nanosecond count;
//! * `p95` — nearest-rank percentile (`ceil(0.95 * N)`-th order
//!   statistic), which degenerates to the max for N < 20 — exactly what
//!   a regression gate wants from a handful of samples.

/// Summary statistics over one benchmark's samples, nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Number of samples summarized.
    pub n: u32,
    /// Smallest sample.
    pub min_ns: u64,
    /// Median (lower-midpoint for even N).
    pub median_ns: u64,
    /// 95th percentile (nearest-rank).
    pub p95_ns: u64,
}

impl SampleStats {
    /// Summarizes `samples`; returns `None` for an empty slice.
    pub fn of(samples: &[u64]) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Some(SampleStats {
            n: u32::try_from(sorted.len()).unwrap_or(u32::MAX),
            min_ns: sorted[0],
            median_ns: median(&sorted),
            p95_ns: percentile(&sorted, 95),
        })
    }
}

/// Median of a non-empty sorted slice (lower-midpoint average for even
/// lengths, truncated to an integer).
fn median(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        let lo = sorted[n / 2 - 1];
        let hi = sorted[n / 2];
        // Overflow-safe midpoint.
        lo / 2 + hi / 2 + (lo % 2 + hi % 2) / 2
    }
}

/// Nearest-rank percentile of a non-empty sorted slice: the
/// `ceil(p/100 * N)`-th order statistic.
fn percentile(sorted: &[u64], p: u64) -> u64 {
    let n = sorted.len() as u64;
    let rank = (p * n).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_none() {
        assert_eq!(SampleStats::of(&[]), None);
    }

    #[test]
    fn single_sample_is_its_own_min_median_p95() {
        let s = SampleStats::of(&[42]).unwrap();
        assert_eq!((s.n, s.min_ns, s.median_ns, s.p95_ns), (1, 42, 42, 42));
    }

    #[test]
    fn two_samples_median_is_the_midpoint() {
        let s = SampleStats::of(&[10, 20]).unwrap();
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.median_ns, 15);
        // Nearest rank: ceil(0.95 * 2) = 2 → the max.
        assert_eq!(s.p95_ns, 20);
    }

    #[test]
    fn odd_n_median_is_the_middle_element() {
        let s = SampleStats::of(&[30, 10, 20]).unwrap();
        assert_eq!((s.min_ns, s.median_ns, s.p95_ns), (10, 20, 30));
    }

    #[test]
    fn even_n_median_truncates_and_input_order_is_irrelevant() {
        let a = SampleStats::of(&[7, 4, 1, 2]).unwrap();
        let b = SampleStats::of(&[1, 2, 4, 7]).unwrap();
        assert_eq!(a, b);
        // Sorted: 1 2 4 7 → median = (2 + 4) / 2 = 3.
        assert_eq!(a.median_ns, 3);
        // (3 + 4) / 2 = 3.5 truncates to 3.
        assert_eq!(SampleStats::of(&[3, 4]).unwrap().median_ns, 3);
    }

    #[test]
    fn p95_follows_nearest_rank_at_scale() {
        // N = 20: ceil(0.95 * 20) = 19 → 19th order statistic = 18.
        let v: Vec<u64> = (0..20).collect();
        assert_eq!(SampleStats::of(&v).unwrap().p95_ns, 18);
        // N = 100: rank 95 → value 94.
        let v: Vec<u64> = (0..100).collect();
        assert_eq!(SampleStats::of(&v).unwrap().p95_ns, 94);
        // N = 5: ceil(4.75) = 5 → the max.
        let v = [5, 1, 4, 2, 3];
        assert_eq!(SampleStats::of(&v).unwrap().p95_ns, 5);
    }

    #[test]
    fn midpoint_of_huge_samples_does_not_overflow() {
        let s = SampleStats::of(&[u64::MAX, u64::MAX - 1]).unwrap();
        assert_eq!(s.median_ns, u64::MAX - 1);
    }
}
