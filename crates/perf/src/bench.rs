//! The benchmark harness: warmup/iteration control around closures.
//!
//! Deliberately criterion-shaped but zero-dependency (the build
//! environment is offline): a [`Bench`] is a named closure returning the
//! number of commands it processed, a [`BenchConfig`] says how many
//! warmup and measured iterations to run, and a [`BenchResult`] carries
//! the raw samples plus the [`SampleStats`] summary the snapshot and the
//! regression gate consume.
//!
//! Use [`std::hint::black_box`] inside the closure around any value the
//! optimizer might otherwise delete.

use crate::stats::SampleStats;
use std::time::Instant;

/// How a suite is run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Unmeasured warmup iterations before sampling.
    pub warmup: u32,
    /// Measured iterations; each contributes one wall-time sample.
    pub iters: u32,
}

impl Default for BenchConfig {
    /// One warmup, five measured iterations — the full-run default.
    fn default() -> Self {
        BenchConfig {
            warmup: 1,
            iters: 5,
        }
    }
}

impl BenchConfig {
    /// The CI smoke configuration: no warmup, a single sample.
    pub fn smoke() -> BenchConfig {
        BenchConfig {
            warmup: 0,
            iters: 1,
        }
    }
}

/// One named benchmark: a closure timed per call, returning how many
/// commands (the domain's unit of work) the call processed.
pub struct Bench {
    /// Stable name; becomes the suite key in `BENCH_*.json`.
    pub name: String,
    work: Box<dyn FnMut() -> u64>,
}

impl Bench {
    /// Wraps a closure as a named benchmark.
    pub fn new(name: &str, work: impl FnMut() -> u64 + 'static) -> Bench {
        Bench {
            name: name.to_string(),
            work: Box::new(work),
        }
    }
}

impl std::fmt::Debug for Bench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bench({:?})", self.name)
    }
}

/// The outcome of running one [`Bench`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// The benchmark's name.
    pub name: String,
    /// Per-iteration wall times, in run order, nanoseconds.
    pub samples_ns: Vec<u64>,
    /// Summary statistics over `samples_ns`.
    pub stats: SampleStats,
    /// Commands processed per iteration (from the final iteration; the
    /// workloads are deterministic, so every iteration agrees).
    pub commands: u64,
}

impl BenchResult {
    /// Commands per second at the median sample.
    pub fn commands_per_sec(&self) -> f64 {
        if self.stats.median_ns == 0 {
            return 0.0;
        }
        self.commands as f64 / (self.stats.median_ns as f64 / 1e9)
    }
}

/// Runs one benchmark under `config`. At least one measured iteration
/// always runs (a zero-iteration config is promoted to one).
pub fn run_bench(bench: &mut Bench, config: BenchConfig) -> BenchResult {
    for _ in 0..config.warmup {
        std::hint::black_box((bench.work)());
    }
    let iters = config.iters.max(1);
    let mut samples_ns = Vec::with_capacity(iters as usize);
    let mut commands = 0;
    for _ in 0..iters {
        let started = Instant::now();
        commands = std::hint::black_box((bench.work)());
        samples_ns.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let stats = SampleStats::of(&samples_ns).expect("at least one iteration ran");
    BenchResult {
        name: bench.name.clone(),
        samples_ns,
        stats,
        commands,
    }
}

/// Runs every benchmark in order and returns the results in the same
/// order.
pub fn run_all(benches: &mut [Bench], config: BenchConfig) -> Vec<BenchResult> {
    benches.iter_mut().map(|b| run_bench(b, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn warmup_runs_are_not_sampled() {
        let calls = Rc::new(Cell::new(0u32));
        let seen = calls.clone();
        let mut bench = Bench::new("counting", move || {
            seen.set(seen.get() + 1);
            7
        });
        let result = run_bench(
            &mut bench,
            BenchConfig {
                warmup: 2,
                iters: 3,
            },
        );
        assert_eq!(calls.get(), 5);
        assert_eq!(result.samples_ns.len(), 3);
        assert_eq!(result.stats.n, 3);
        assert_eq!(result.commands, 7);
        assert_eq!(result.name, "counting");
    }

    #[test]
    fn zero_iters_promotes_to_one() {
        let mut bench = Bench::new("noop", || 1);
        let result = run_bench(
            &mut bench,
            BenchConfig {
                warmup: 0,
                iters: 0,
            },
        );
        assert_eq!(result.samples_ns.len(), 1);
    }

    #[test]
    fn commands_per_sec_derives_from_the_median() {
        let result = BenchResult {
            name: "x".into(),
            samples_ns: vec![2_000_000],
            stats: SampleStats::of(&[2_000_000]).unwrap(),
            commands: 1_000,
        };
        // 1000 commands in 2 ms → 500 000/s.
        assert!((result.commands_per_sec() - 500_000.0).abs() < 1e-6);
        let zero = BenchResult {
            stats: SampleStats::of(&[0]).unwrap(),
            ..result
        };
        assert_eq!(zero.commands_per_sec(), 0.0);
    }

    #[test]
    fn run_all_preserves_order() {
        let mut benches = vec![Bench::new("a", || 1), Bench::new("b", || 2)];
        let results = run_all(&mut benches, BenchConfig::smoke());
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(results[1].commands, 2);
    }
}
