//! The perf-regression gate: compare a fresh snapshot against a baseline.
//!
//! The gate compares **median** nanoseconds per suite — the median is
//! robust to one slow outlier iteration, which is the common CI noise
//! shape. A suite regresses when its median grew more than the
//! threshold percentage over the baseline; a suite present in the
//! baseline but absent from the current run also fails (a silently
//! dropped hot path must not read as "no regressions"). Suites new in
//! the current run are reported informationally and never fail.
//!
//! The gate is advisory about *why* numbers moved: the report flags a
//! baseline measured on a different core count or OS, since cross-host
//! comparisons are expected to differ.

use crate::error::PerfError;
use crate::snapshot::PerfSnapshot;
use std::fmt;

/// Verdict for one suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within threshold (including improvements).
    Ok,
    /// Median grew beyond the threshold.
    Regressed,
    /// In the baseline, absent from the current run — fails the gate.
    Missing,
    /// New in the current run — informational only.
    New,
}

/// One suite's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateEntry {
    /// Suite name.
    pub suite: String,
    /// Baseline median, nanoseconds (0 when [`GateStatus::New`]).
    pub baseline_ns: u64,
    /// Current median, nanoseconds (0 when [`GateStatus::Missing`]).
    pub current_ns: u64,
    /// Median change in percent (positive = slower); `None` when either
    /// side is absent or the baseline median is zero.
    pub delta_pct: Option<f64>,
    /// The verdict.
    pub status: GateStatus,
}

/// The gate's full comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Allowed median growth, percent.
    pub threshold_pct: f64,
    /// Per-suite verdicts: baseline suites first (sorted), then new
    /// suites (sorted).
    pub entries: Vec<GateEntry>,
    /// Set when baseline and current host differ (cores/os/arch) — the
    /// comparison is then expected to be noisy.
    pub host_mismatch: Option<String>,
}

impl GateReport {
    /// `true` when any suite regressed or went missing.
    pub fn failed(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.status, GateStatus::Regressed | GateStatus::Missing))
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "perf gate (threshold +{:.0}% on median):",
            self.threshold_pct
        )?;
        if let Some(mismatch) = &self.host_mismatch {
            writeln!(f, "  note: {mismatch}")?;
        }
        for e in &self.entries {
            let delta = match e.delta_pct {
                Some(d) => format!("{d:+.1}%"),
                None => "-".to_string(),
            };
            let status = match e.status {
                GateStatus::Ok => "ok",
                GateStatus::Regressed => "REGRESSED",
                GateStatus::Missing => "MISSING",
                GateStatus::New => "new",
            };
            writeln!(
                f,
                "  {:<24} {:>12} -> {:>12} ns  {:>8}  {}",
                e.suite, e.baseline_ns, e.current_ns, delta, status
            )?;
        }
        let verdict = if self.failed() { "FAIL" } else { "PASS" };
        write!(f, "  verdict: {verdict}")
    }
}

/// Compares `current` against `baseline` at `threshold_pct`.
///
/// # Errors
///
/// [`PerfError::Gate`] when the two snapshots share no suite — gating
/// on nothing would vacuously pass.
pub fn compare(
    baseline: &PerfSnapshot,
    current: &PerfSnapshot,
    threshold_pct: f64,
) -> Result<GateReport, PerfError> {
    if !baseline
        .suites
        .keys()
        .any(|name| current.suites.contains_key(name))
    {
        return Err(PerfError::Gate(
            "baseline and current snapshots share no suite".into(),
        ));
    }
    let mut entries = Vec::new();
    for (name, base) in &baseline.suites {
        match current.suites.get(name) {
            Some(cur) => {
                let delta_pct = (base.median_ns > 0).then(|| {
                    (cur.median_ns as f64 - base.median_ns as f64) / base.median_ns as f64 * 100.0
                });
                let regressed = delta_pct.is_some_and(|d| d > threshold_pct);
                entries.push(GateEntry {
                    suite: name.clone(),
                    baseline_ns: base.median_ns,
                    current_ns: cur.median_ns,
                    delta_pct,
                    status: if regressed {
                        GateStatus::Regressed
                    } else {
                        GateStatus::Ok
                    },
                });
            }
            None => entries.push(GateEntry {
                suite: name.clone(),
                baseline_ns: base.median_ns,
                current_ns: 0,
                delta_pct: None,
                status: GateStatus::Missing,
            }),
        }
    }
    for (name, cur) in &current.suites {
        if !baseline.suites.contains_key(name) {
            entries.push(GateEntry {
                suite: name.clone(),
                baseline_ns: 0,
                current_ns: cur.median_ns,
                delta_pct: None,
                status: GateStatus::New,
            });
        }
    }
    let host_mismatch = (baseline.host != current.host).then(|| {
        format!(
            "baseline host differs ({} cores {} {}) vs current ({} cores {} {})",
            baseline.host.cores,
            baseline.host.os,
            baseline.host.arch,
            current.host.cores,
            current.host.os,
            current.host.arch,
        )
    });
    Ok(GateReport {
        threshold_pct,
        entries,
        host_mismatch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HostInfo, SuiteStats};
    use std::collections::BTreeMap;

    fn snap(medians: &[(&str, u64)]) -> PerfSnapshot {
        let suites: BTreeMap<String, SuiteStats> = medians
            .iter()
            .map(|(name, m)| {
                (
                    name.to_string(),
                    SuiteStats {
                        min_ns: m.saturating_sub(1),
                        median_ns: *m,
                        p95_ns: m + 1,
                        iters: 5,
                        commands: 1000,
                        commands_per_sec: 0.0,
                    },
                )
            })
            .collect();
        PerfSnapshot {
            host: HostInfo {
                cores: 4,
                os: "linux".into(),
                arch: "x86_64".into(),
            },
            suites,
        }
    }

    #[test]
    fn unchanged_tree_passes() {
        let base = snap(&[("a", 100), ("b", 2_000)]);
        let report = compare(&base, &base.clone(), 20.0).unwrap();
        assert!(!report.failed());
        assert!(report.entries.iter().all(|e| e.status == GateStatus::Ok));
        assert!(report.host_mismatch.is_none());
        assert!(report.to_string().ends_with("verdict: PASS"));
    }

    #[test]
    fn synthetic_2x_slowdown_fails_a_20_pct_gate() {
        // The acceptance scenario: baseline doctored to half the current
        // medians reads as a 2× slowdown.
        let baseline = snap(&[("a", 50), ("b", 1_000)]);
        let current = snap(&[("a", 100), ("b", 2_000)]);
        let report = compare(&baseline, &current, 20.0).unwrap();
        assert!(report.failed());
        for e in &report.entries {
            assert_eq!(e.status, GateStatus::Regressed, "{e:?}");
            assert!((e.delta_pct.unwrap() - 100.0).abs() < 1e-9);
        }
        let text = report.to_string();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.ends_with("verdict: FAIL"), "{text}");
    }

    #[test]
    fn growth_at_the_threshold_passes_and_above_fails() {
        let baseline = snap(&[("a", 1_000)]);
        let at = compare(&baseline, &snap(&[("a", 1_200)]), 20.0).unwrap();
        assert!(!at.failed(), "exactly +20% is within threshold");
        let over = compare(&baseline, &snap(&[("a", 1_201)]), 20.0).unwrap();
        assert!(over.failed());
    }

    #[test]
    fn improvements_pass_even_when_large() {
        let report = compare(&snap(&[("a", 10_000)]), &snap(&[("a", 100)]), 20.0).unwrap();
        assert!(!report.failed());
        assert!(report.entries[0].delta_pct.unwrap() < -90.0);
    }

    #[test]
    fn missing_suite_fails_new_suite_does_not() {
        let baseline = snap(&[("dropped", 100), ("kept", 100)]);
        let current = snap(&[("kept", 100), ("added", 100)]);
        let report = compare(&baseline, &current, 20.0).unwrap();
        assert!(report.failed());
        let by_name = |n: &str| report.entries.iter().find(|e| e.suite == n).unwrap().status;
        assert_eq!(by_name("dropped"), GateStatus::Missing);
        assert_eq!(by_name("kept"), GateStatus::Ok);
        assert_eq!(by_name("added"), GateStatus::New);
        // A new-only difference passes.
        let report = compare(&snap(&[("kept", 100)]), &current, 20.0).unwrap();
        assert!(!report.failed());
    }

    #[test]
    fn disjoint_snapshots_are_a_gate_error() {
        let err = compare(&snap(&[("a", 1)]), &snap(&[("b", 1)]), 20.0).expect_err("disjoint");
        assert!(err.to_string().contains("share no suite"), "{err}");
    }

    #[test]
    fn zero_baseline_median_never_divides() {
        let report = compare(&snap(&[("a", 0)]), &snap(&[("a", 50)]), 20.0).unwrap();
        assert_eq!(report.entries[0].delta_pct, None);
        assert_eq!(report.entries[0].status, GateStatus::Ok);
    }

    #[test]
    fn host_mismatch_is_noted() {
        let mut other = snap(&[("a", 100)]);
        other.host.cores = 64;
        let report = compare(&snap(&[("a", 100)]), &other, 20.0).unwrap();
        let note = report.host_mismatch.as_deref().unwrap();
        assert!(note.contains("4 cores"), "{note}");
        assert!(note.contains("64 cores"), "{note}");
        assert!(report.to_string().contains("note:"), "{report}");
    }
}
