//! # dram-perf
//!
//! Wall-clock observability for the DRAMScope reproduction: how fast the
//! simulator and the fleet engine actually run on the host, measured,
//! snapshotted, and gated.
//!
//! The deterministic telemetry layer (`dram-telemetry`) deliberately
//! excludes the host clock so its snapshots stay byte-identical across
//! machines. This crate is the other half: everything here is *about*
//! host time, and none of it feeds back into simulation results. The
//! paper's methodology motivates both halves — DRAM Bender exists to
//! make command issue cheap enough to hit timing corners, so command
//! throughput is a first-class quantity worth tracking, not a nicety.
//!
//! Three pieces, all zero-dependency (the build environment is
//! offline — no criterion, no serde):
//!
//! * **Profiling** — [`Profiler`] folds the `phase:<name>` /
//!   `span:<name>:enter/exit` markers the core probes already emit into
//!   a hierarchical span tree ([`SpanTree`]) with per-node call counts,
//!   total/self wall time, simulated-time coverage, commands/sec, and
//!   simulated-ns-per-host-µs; output as text, JSON, or collapsed
//!   stacks for `flamegraph.pl`. [`ProfilerSink`] / [`SharedProfiler`]
//!   attach it to a live chip at the same [`dram_sim::CommandSink`] hook
//!   the trace recorder uses.
//! * **Benchmarking** — [`Bench`] + [`BenchConfig`] + [`run_all`]: a
//!   warmup/iteration harness over named closures, summarized by
//!   [`SampleStats`] (min/median/p95, well-defined from N = 1).
//! * **Snapshots and gating** — [`PerfSnapshot`] is the `BENCH_*.json`
//!   schema (host info + per-suite statistics, byte-stable rendering);
//!   [`gate::compare`] diffs a fresh snapshot against a baseline and
//!   fails on median regressions beyond a threshold.
//!
//! The named suites that exercise the repo's hot paths live with the
//! experiment drivers (`dramscope_bench::perf_suites`); this crate
//! stays free of DRAM-specific workloads, mirroring how
//! `dram-telemetry` stays free of DRAM-specific metric names.
//!
//! # Example
//!
//! ```
//! use dram_perf::{Bench, BenchConfig, PerfSnapshot, gate};
//!
//! let mut benches = vec![Bench::new("square_sum", || {
//!     let n: u64 = (0..1000u64).map(|i| i * i).sum();
//!     std::hint::black_box(n);
//!     1000 // "commands" processed
//! })];
//! let results = dram_perf::run_all(&mut benches, BenchConfig::smoke());
//! let snapshot = PerfSnapshot::from_results(&results);
//! // An unchanged tree always passes the gate.
//! let report = gate::compare(&snapshot, &snapshot, 20.0).unwrap();
//! assert!(!report.failed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod error;
pub mod gate;
pub mod json;
pub mod profiler;
pub mod sink;
pub mod snapshot;
pub mod stats;

pub use bench::{run_all, run_bench, Bench, BenchConfig, BenchResult};
pub use error::PerfError;
pub use gate::{GateEntry, GateReport, GateStatus};
pub use profiler::{Profiler, SpanNode, SpanTree, ROOT_NAME};
pub use sink::{ProfilerSink, SharedProfiler};
pub use snapshot::{HostInfo, PerfSnapshot, SuiteStats, SCHEMA, SCHEMA_VERSION};
pub use stats::SampleStats;
