//! `BENCH_*.json` — the machine-readable perf snapshot.
//!
//! One snapshot is one run of the bench suite on one machine: a schema
//! header, a [`HostInfo`] block (so a baseline read on different
//! hardware can be recognized as such), and per-suite
//! [`SuiteStats`] — `min/median/p95` nanoseconds, iteration count,
//! commands, and commands/sec. Suites are stored in a `BTreeMap` and the
//! writer emits keys in sorted order with a fixed field layout, so two
//! snapshots of the same results are byte-identical — `diff` works on
//! them the way it works on the telemetry fixtures.

use crate::bench::BenchResult;
use crate::error::PerfError;
use crate::json::{self, Value};
use std::collections::BTreeMap;

/// Schema identifier stored in every snapshot.
pub const SCHEMA: &str = "dramscope.perf";

/// Snapshot schema version. Bump on incompatible layout changes.
pub const SCHEMA_VERSION: u64 = 1;

/// The machine a snapshot was measured on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Logical cores (`std::thread::available_parallelism`).
    pub cores: u64,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
}

impl HostInfo {
    /// Describes the current machine.
    pub fn current() -> HostInfo {
        HostInfo {
            cores: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

/// Summary of one suite in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteStats {
    /// Smallest sample, nanoseconds.
    pub min_ns: u64,
    /// Median sample, nanoseconds (the gate's comparison figure).
    pub median_ns: u64,
    /// 95th-percentile sample, nanoseconds.
    pub p95_ns: u64,
    /// Measured iterations behind the statistics.
    pub iters: u64,
    /// Commands processed per iteration.
    pub commands: u64,
    /// Commands per second at the median.
    pub commands_per_sec: f64,
}

/// A full perf snapshot: host plus per-suite statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSnapshot {
    /// The measuring machine.
    pub host: HostInfo,
    /// Per-suite statistics, keyed by suite name.
    pub suites: BTreeMap<String, SuiteStats>,
}

impl PerfSnapshot {
    /// Builds a snapshot of the current machine from bench results.
    pub fn from_results(results: &[BenchResult]) -> PerfSnapshot {
        let suites = results
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    SuiteStats {
                        min_ns: r.stats.min_ns,
                        median_ns: r.stats.median_ns,
                        p95_ns: r.stats.p95_ns,
                        iters: u64::from(r.stats.n),
                        commands: r.commands,
                        commands_per_sec: r.commands_per_sec(),
                    },
                )
            })
            .collect();
        PerfSnapshot {
            host: HostInfo::current(),
            suites,
        }
    }

    /// Renders the snapshot as pretty-printed JSON with a fixed field
    /// layout and sorted suite keys — byte-stable for equal contents.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"version\": {SCHEMA_VERSION},\n"));
        out.push_str("  \"host\": {\n");
        out.push_str(&format!(
            "    \"arch\": {},\n",
            json_string(&self.host.arch)
        ));
        out.push_str(&format!("    \"cores\": {},\n", self.host.cores));
        out.push_str(&format!("    \"os\": {}\n", json_string(&self.host.os)));
        out.push_str("  },\n");
        out.push_str("  \"suites\": {");
        for (i, (name, s)) in self.suites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {{\n", json_string(name)));
            out.push_str(&format!("      \"commands\": {},\n", s.commands));
            out.push_str(&format!(
                "      \"commands_per_sec\": {:.1},\n",
                s.commands_per_sec
            ));
            out.push_str(&format!("      \"iters\": {},\n", s.iters));
            out.push_str(&format!("      \"median_ns\": {},\n", s.median_ns));
            out.push_str(&format!("      \"min_ns\": {},\n", s.min_ns));
            out.push_str(&format!("      \"p95_ns\": {}\n", s.p95_ns));
            out.push_str("    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a snapshot from JSON text. `path` labels errors only.
    ///
    /// # Errors
    ///
    /// [`PerfError::Parse`] for malformed JSON, [`PerfError::Schema`]
    /// for valid JSON that is not a v1 `dramscope.perf` snapshot.
    pub fn from_json(path: &str, text: &str) -> Result<PerfSnapshot, PerfError> {
        let schema_err = |what: String| PerfError::Schema {
            path: path.to_string(),
            what,
        };
        let doc = json::parse(path, text)?;
        let root = doc
            .as_object()
            .ok_or_else(|| schema_err("document is not an object".into()))?;
        let schema = root
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| schema_err("missing \"schema\"".into()))?;
        if schema != SCHEMA {
            return Err(schema_err(format!(
                "schema is {schema:?}, expected {SCHEMA:?}"
            )));
        }
        let version = root
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| schema_err("missing \"version\"".into()))?;
        if version != SCHEMA_VERSION {
            return Err(schema_err(format!(
                "version {version} unsupported (this build reads v{SCHEMA_VERSION})"
            )));
        }
        let host = root
            .get("host")
            .and_then(Value::as_object)
            .ok_or_else(|| schema_err("missing \"host\"".into()))?;
        let host = HostInfo {
            cores: host
                .get("cores")
                .and_then(Value::as_u64)
                .ok_or_else(|| schema_err("host is missing \"cores\"".into()))?,
            os: host
                .get("os")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            arch: host
                .get("arch")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
        };
        let raw_suites = root
            .get("suites")
            .and_then(Value::as_object)
            .ok_or_else(|| schema_err("missing \"suites\"".into()))?;
        let mut suites = BTreeMap::new();
        for (name, entry) in raw_suites {
            let entry = entry
                .as_object()
                .ok_or_else(|| schema_err(format!("suite {name:?} is not an object")))?;
            let field = |key: &str| {
                entry
                    .get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| schema_err(format!("suite {name:?} is missing integer {key:?}")))
            };
            suites.insert(
                name.clone(),
                SuiteStats {
                    min_ns: field("min_ns")?,
                    median_ns: field("median_ns")?,
                    p95_ns: field("p95_ns")?,
                    iters: field("iters")?,
                    commands: field("commands")?,
                    commands_per_sec: entry
                        .get("commands_per_sec")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0),
                },
            );
        }
        Ok(PerfSnapshot { host, suites })
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// [`PerfError::Io`] on filesystem failures plus the
    /// [`PerfSnapshot::from_json`] failure modes.
    pub fn load(path: &str) -> Result<PerfSnapshot, PerfError> {
        let text = std::fs::read_to_string(path).map_err(|e| PerfError::io("read", path, &e))?;
        PerfSnapshot::from_json(path, &text)
    }

    /// Writes the snapshot to `path` as pretty JSON.
    ///
    /// # Errors
    ///
    /// [`PerfError::Io`] on filesystem failures.
    pub fn save(&self, path: &str) -> Result<(), PerfError> {
        std::fs::write(path, self.to_json()).map_err(|e| PerfError::io("write", path, &e))
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SampleStats;

    fn sample_snapshot() -> PerfSnapshot {
        let results = vec![
            BenchResult {
                name: "characterize_small".into(),
                samples_ns: vec![3_000_000, 2_000_000, 4_000_000],
                stats: SampleStats::of(&[3_000_000, 2_000_000, 4_000_000]).unwrap(),
                commands: 60_000,
            },
            BenchResult {
                name: "trace_decode".into(),
                samples_ns: vec![500_000],
                stats: SampleStats::of(&[500_000]).unwrap(),
                commands: 12_000,
            },
        ];
        PerfSnapshot::from_results(&results)
    }

    #[test]
    fn round_trips_through_json() {
        let snap = sample_snapshot();
        let text = snap.to_json();
        let back = PerfSnapshot::from_json("mem.json", &text).expect("parses back");
        assert_eq!(back, snap);
        // Byte-stable: rendering twice gives identical bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn schema_layout_is_the_documented_one() {
        let text = sample_snapshot().to_json();
        assert!(text.starts_with("{\n  \"schema\": \"dramscope.perf\",\n  \"version\": 1,"));
        assert!(text.contains("\"characterize_small\""));
        assert!(text.contains("\"median_ns\": 3000000"));
        assert!(text.contains("\"commands_per_sec\": 20000000.0"));
        assert!(text.contains("\"cores\":"));
        // Suites are sorted.
        let a = text.find("characterize_small").unwrap();
        let b = text.find("trace_decode").unwrap();
        assert!(a < b);
    }

    #[test]
    fn rejects_wrong_schema_version_and_shapes() {
        let bad: &[(&str, &str)] = &[
            ("[1]", "document is not an object"),
            ("{}", "missing \"schema\""),
            (r#"{"schema":"other"}"#, "schema is \"other\""),
            (r#"{"schema":"dramscope.perf"}"#, "missing \"version\""),
            (
                r#"{"schema":"dramscope.perf","version":9}"#,
                "version 9 unsupported",
            ),
            (
                r#"{"schema":"dramscope.perf","version":1}"#,
                "missing \"host\"",
            ),
            (
                r#"{"schema":"dramscope.perf","version":1,"host":{"cores":1}}"#,
                "missing \"suites\"",
            ),
            (
                r#"{"schema":"dramscope.perf","version":1,"host":{"cores":1},
                   "suites":{"a":3}}"#,
                "suite \"a\" is not an object",
            ),
            (
                r#"{"schema":"dramscope.perf","version":1,"host":{"cores":1},
                   "suites":{"a":{"median_ns":5}}}"#,
                "missing integer \"min_ns\"",
            ),
        ];
        for (text, needle) in bad {
            let err = PerfSnapshot::from_json("bad.json", text).expect_err(text);
            assert!(err.to_string().contains(needle), "{text} gave {err}");
        }
        // Malformed JSON surfaces as a parse error with an offset.
        let err = PerfSnapshot::from_json("bad.json", "{oops").expect_err("parse");
        assert!(matches!(err, PerfError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn load_names_the_missing_file() {
        let err = PerfSnapshot::load("/nonexistent/BENCH_x.json").expect_err("io");
        let text = err.to_string();
        assert!(
            text.contains("cannot read /nonexistent/BENCH_x.json"),
            "{text}"
        );
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let snap = sample_snapshot();
        let path = std::env::temp_dir().join("dram_perf_snapshot_test.json");
        let path = path.to_str().expect("utf-8 temp path");
        snap.save(path).expect("save");
        let back = PerfSnapshot::load(path).expect("load");
        assert_eq!(back, snap);
        let _ = std::fs::remove_file(path);
    }
}
