//! Attaching a [`Profiler`] to a live chip's command boundary.
//!
//! [`ProfilerSink`] implements [`dram_sim::CommandSink`] and rides the
//! same hook as the trace recorder and the metrics sink: it watches the
//! deterministic event stream for the `phase:`/`span:` markers the core
//! probes already emit, stamps each with the host monotonic clock, and
//! feeds the profiler. Commands between markers advance the simulated
//! clock and the command count, so every tree node ends up with the
//! wall/sim/command triple its rates derive from.
//!
//! Unlike the deterministic metrics sink, this sink reads
//! `std::time::Instant` — its wall-clock numbers are host- and
//! load-dependent by design. The *structure* of the resulting tree is
//! still a pure function of the event stream (see
//! [`SpanTree::structure_signature`]).

use crate::profiler::{Profiler, SpanTree};
use dram_sim::{ChipEvent, CommandOutcome, CommandSink, REF_SLICES};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A [`CommandSink`] that profiles a run's phase/span markers on the
/// host clock.
#[derive(Debug)]
pub struct ProfilerSink {
    profiler: Profiler,
    started: Instant,
    /// Latest simulated timestamp seen, ps (markers carry no timestamp
    /// and are attributed to this clock, mirroring `MetricsSink`).
    now_ps: u64,
    /// Accepted pin-level commands so far.
    commands: u64,
}

impl Default for ProfilerSink {
    fn default() -> Self {
        ProfilerSink::new()
    }
}

impl ProfilerSink {
    /// Creates a sink whose wall clock starts now.
    pub fn new() -> ProfilerSink {
        ProfilerSink {
            profiler: Profiler::new(),
            started: Instant::now(),
            now_ps: 0,
            commands: 0,
        }
    }

    fn wall_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Closes open frames and returns the finished span tree.
    pub fn finish(self) -> SpanTree {
        let wall = self.wall_ns();
        self.profiler.finish(wall, self.now_ps, self.commands)
    }

    fn accept(&mut self, count: u64, at_ps: u64) {
        self.now_ps = self.now_ps.max(at_ps);
        self.commands += count;
    }
}

impl CommandSink for ProfilerSink {
    fn record(&mut self, event: ChipEvent<'_>) {
        match event {
            ChipEvent::Command { at, outcome, .. } => {
                // Rejected commands still advance the chip clock.
                let count = u64::from(!matches!(outcome, CommandOutcome::Rejected(_)));
                self.accept(count, at.as_ps());
            }
            ChipEvent::Burst {
                count, at, outcome, ..
            } => {
                let n = if matches!(outcome, CommandOutcome::Rejected(_)) {
                    0
                } else {
                    count
                };
                self.accept(n, at.as_ps());
            }
            ChipEvent::RefreshWindow { at, outcome } => {
                let n = if matches!(outcome, CommandOutcome::Rejected(_)) {
                    0
                } else {
                    REF_SLICES
                };
                self.accept(n, at.as_ps());
            }
            ChipEvent::SetTemperature { .. } => {}
            ChipEvent::Marker { label } => {
                let wall = self.wall_ns();
                self.profiler
                    .observe_marker(label, wall, self.now_ps, self.commands);
            }
        }
    }
}

/// A shareable handle over a [`ProfilerSink`]: one clone rides the chip
/// as its boxed sink while the caller keeps another to harvest the tree
/// after the run — the same pattern as `dram_sim::SharedMetrics`.
#[derive(Debug, Clone, Default)]
pub struct SharedProfiler(Arc<Mutex<ProfilerSink>>);

impl SharedProfiler {
    /// Creates a handle over a fresh sink.
    pub fn new() -> SharedProfiler {
        SharedProfiler::default()
    }

    /// A boxed clone suitable for `Testbed::set_sink` /
    /// `characterize_instrumented`.
    pub fn sink(&self) -> Box<dyn CommandSink + Send> {
        Box::new(self.clone())
    }

    /// Closes open frames and returns the finished tree, resetting the
    /// shared sink to empty.
    pub fn finish(&self) -> SpanTree {
        let mut sink = self.0.lock().expect("profiler mutex poisoned");
        std::mem::take(&mut *sink).finish()
    }
}

impl CommandSink for SharedProfiler {
    fn record(&mut self, event: ChipEvent<'_>) {
        self.0
            .lock()
            .expect("profiler mutex poisoned")
            .record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{Command, Time};

    fn cmd(at_ns: u64) -> ChipEvent<'static> {
        ChipEvent::Command {
            cmd: Command::Activate { bank: 0, row: 1 },
            at: Time::from_ns(at_ns),
            outcome: CommandOutcome::Accepted,
        }
    }

    #[test]
    fn sink_tracks_sim_clock_and_commands_through_markers() {
        let mut sink = ProfilerSink::new();
        sink.record(ChipEvent::Marker {
            label: "phase:structure",
        });
        sink.record(cmd(100));
        sink.record(ChipEvent::Marker {
            label: "span:probe:enter",
        });
        sink.record(cmd(300));
        sink.record(cmd(500));
        sink.record(ChipEvent::Marker {
            label: "span:probe:exit",
        });
        let tree = sink.finish();
        let phase = &tree.root.children[0];
        assert_eq!(phase.name, "phase:structure");
        let probe = &phase.children[0];
        assert_eq!(probe.commands, 2);
        assert_eq!(probe.sim_ps, 400_000); // 100 ns → 500 ns
        assert_eq!(tree.root.commands, 3);
    }

    #[test]
    fn rejected_commands_advance_the_clock_but_not_the_count() {
        let mut sink = ProfilerSink::new();
        sink.record(ChipEvent::Marker {
            label: "span:s:enter",
        });
        sink.record(ChipEvent::Command {
            cmd: Command::Precharge { bank: 0 },
            at: Time::from_ns(900),
            outcome: CommandOutcome::Rejected(dram_sim::CommandError::TimeReversed),
        });
        sink.record(ChipEvent::Marker {
            label: "span:s:exit",
        });
        let tree = sink.finish();
        let s = &tree.root.children[0];
        assert_eq!(s.commands, 0);
        assert_eq!(s.sim_ps, 900_000);
    }

    #[test]
    fn shared_profiler_harvests_and_resets() {
        let shared = SharedProfiler::new();
        let mut half = shared.sink();
        half.record(ChipEvent::Marker {
            label: "span:x:enter",
        });
        half.record(cmd(50));
        half.record(ChipEvent::Marker {
            label: "span:x:exit",
        });
        let tree = shared.finish();
        assert_eq!(tree.root.children[0].name, "x");
        assert_eq!(tree.root.children[0].calls, 1);
        // Reset after harvest: a fresh tree has no children.
        assert!(shared.finish().root.children.is_empty());
    }

    #[test]
    fn bursts_and_refresh_windows_scale_like_chip_stats() {
        let mut sink = ProfilerSink::new();
        sink.record(ChipEvent::Marker {
            label: "span:hammer:enter",
        });
        sink.record(ChipEvent::Burst {
            bank: 0,
            row: 3,
            count: 4000,
            each_on: Time::from_ns(30),
            at: Time::from_ns(1_000),
            outcome: CommandOutcome::Accepted,
        });
        sink.record(ChipEvent::RefreshWindow {
            at: Time::from_ms(64),
            outcome: CommandOutcome::Accepted,
        });
        sink.record(ChipEvent::Marker {
            label: "span:hammer:exit",
        });
        let tree = sink.finish();
        let h = &tree.root.children[0];
        assert_eq!(h.commands, 4000 + REF_SLICES);
    }
}
