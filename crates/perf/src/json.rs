//! A minimal, total JSON reader for snapshot files.
//!
//! The repo is offline and dependency-free, so baseline files are read
//! with this ~200-line recursive-descent parser instead of serde. It
//! accepts the JSON subset the snapshot writer emits (objects, arrays,
//! strings with the common escapes, numbers, booleans, null) plus
//! arbitrary whitespace, and — like `dram_trace`'s decoder — it never
//! panics: every malformed input maps to a [`PerfError::Parse`] carrying
//! the byte offset where reading stopped.

use crate::error::PerfError;
use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are held in a `BTreeMap`, so
/// re-rendering a value is deterministic regardless of file key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers above 2^53 lose precision; snapshot
    /// timings are well below that).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that
    /// round-trips (no fraction, no sign, within `u64`).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }
}

/// Parses one JSON document; trailing garbage is an error.
///
/// `path` is only used to label errors.
///
/// # Errors
///
/// Returns [`PerfError::Parse`] with the byte offset of the first
/// malformed construct.
pub fn parse(path: &str, input: &str) -> Result<Value, PerfError> {
    let mut p = Parser {
        path,
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

/// Nesting ceiling; snapshot files are 3 levels deep, hostile input
/// must not blow the stack.
const MAX_DEPTH: u32 = 64;

struct Parser<'a> {
    path: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> PerfError {
        PerfError::Parse {
            path: self.path.to_string(),
            offset: self.pos,
            what,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), PerfError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, PerfError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self) -> Result<Value, PerfError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, PerfError> {
        self.expect(b'{', "expected '{'")?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, PerfError> {
        self.expect(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape with `self.pos`
    /// on the `u`, without consuming them.
    fn u16_escape(&mut self) -> Result<u32, PerfError> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("non-ASCII \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn string(&mut self) -> Result<String, PerfError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.u16_escape()?;
                            if (0xdc00..0xe000).contains(&code) {
                                return Err(self.err("unpaired low surrogate"));
                            }
                            if (0xd800..0xdc00).contains(&code) {
                                // Reference encoders emit non-BMP
                                // characters as a \uD8xx\uDCxx pair;
                                // combine it into one scalar.
                                self.pos += 5;
                                if self.peek() != Some(b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.u16_escape()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                let scalar = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                out.push(
                                    char::from_u32(scalar)
                                        .expect("paired surrogates form a scalar"),
                                );
                            } else {
                                out.push(
                                    char::from_u32(code).expect("non-surrogate u16 is a scalar"),
                                );
                            }
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input slice came from a &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, PerfError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(input: &str) -> Value {
        parse("t.json", input).expect("parses")
    }

    #[test]
    fn parses_the_snapshot_shapes() {
        let v = ok(r#"{"schema":"dramscope.perf","version":1,
                       "suites":{"a":{"median_ns":12.5,"iters":3}},
                       "tags":["x","y"],"none":null,"flag":true}"#);
        let obj = v.as_object().unwrap();
        assert_eq!(obj["schema"].as_str(), Some("dramscope.perf"));
        assert_eq!(obj["version"].as_u64(), Some(1));
        let suites = obj["suites"].as_object().unwrap();
        assert_eq!(
            suites["a"].as_object().unwrap()["median_ns"].as_f64(),
            Some(12.5)
        );
        assert_eq!(
            obj["tags"],
            Value::Array(vec![Value::String("x".into()), Value::String("y".into()),])
        );
        assert_eq!(obj["none"], Value::Null);
        assert_eq!(obj["flag"], Value::Bool(true));
    }

    #[test]
    fn numbers_cover_integers_floats_exponents_and_signs() {
        assert_eq!(ok("0").as_u64(), Some(0));
        assert_eq!(ok("18446744073709551615").as_f64(), Some(u64::MAX as f64));
        assert_eq!(ok("-3.25").as_f64(), Some(-3.25));
        assert_eq!(ok("1e3").as_f64(), Some(1000.0));
        assert_eq!(ok("2.5E-1").as_f64(), Some(0.25));
        // Negative / fractional numbers are not u64s.
        assert_eq!(ok("-1").as_u64(), None);
        assert_eq!(ok("1.5").as_u64(), None);
    }

    #[test]
    fn strings_unescape() {
        assert_eq!(ok(r#""a\"b\\c\n\u0041""#).as_str(), Some("a\"b\\c\nA"));
        assert_eq!(ok("\"héllo\"").as_str(), Some("héllo"));
    }

    #[test]
    fn surrogate_pairs_combine_into_one_scalar() {
        // Reference encoders write non-BMP characters as a UTF-16
        // surrogate pair; both the escaped pair and the raw character
        // decode to the same string.
        assert_eq!(ok("\"\\ud83d\\ude00\"").as_str(), Some("\u{1f600}"));
        assert_eq!(ok("\"\u{1f600}\"").as_str(), Some("\u{1f600}"));
        assert_eq!(ok("\"\\ud800\\udc00\"").as_str(), Some("\u{10000}"));
        assert_eq!(ok("\"\\udbff\\udfff\"").as_str(), Some("\u{10ffff}"));
        // A pair sits between other content without desyncing the
        // cursor, and DEL (0x7f) passes as an escape or raw.
        assert_eq!(
            ok("\"a\\ud83d\\ude00b\\u007f\"").as_str(),
            Some("a\u{1f600}b\u{7f}")
        );
        assert_eq!(ok("\"\u{7f}\"").as_str(), Some("\u{7f}"));
    }

    #[test]
    fn malformed_input_errors_with_offsets_not_panics() {
        let cases: &[(&str, &str)] = &[
            ("", "unexpected end of input"),
            ("{", "expected '\"'"),
            ("{\"a\" 1}", "expected ':'"),
            ("{\"a\":1 \"b\":2}", "expected ',' or '}'"),
            ("[1 2]", "expected ',' or ']'"),
            ("\"abc", "unterminated string"),
            ("\"\\q\"", "unknown escape"),
            ("\"\\u12", "truncated \\u escape"),
            ("\"\\ud800\"", "unpaired high surrogate"),
            ("\"\\ud800x\"", "unpaired high surrogate"),
            ("\"\\ud800\\n\"", "unpaired high surrogate"),
            ("\"\\ud800\\ud800\"", "unpaired high surrogate"),
            ("\"\\udc00\"", "unpaired low surrogate"),
            ("\"\\ud83d\\u00e9\"", "unpaired high surrogate"),
            ("tru", "unrecognized literal"),
            ("1 2", "trailing data after document"),
            ("@", "unexpected character"),
            ("-", "malformed number"),
        ];
        for (input, needle) in cases {
            let err = parse("t.json", input).expect_err(input);
            let text = err.to_string();
            assert!(text.contains(needle), "{input:?} gave {text:?}");
            assert!(text.contains("at byte"), "{text:?} names an offset");
        }
    }

    #[test]
    fn hostile_nesting_is_bounded() {
        let deep = "[".repeat(100_000);
        let err = parse("t.json", &deep).expect_err("too deep");
        assert!(err.to_string().contains("nesting too deep"), "{err}");
    }

    #[test]
    fn duplicate_keys_last_write_wins() {
        let v = ok(r#"{"a":1,"a":2}"#);
        assert_eq!(v.as_object().unwrap()["a"].as_u64(), Some(2));
    }
}
