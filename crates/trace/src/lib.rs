//! # dram-trace
//!
//! Command-trace capture, deterministic replay, and golden-trace
//! regression support for the DRAMScope reproduction.
//!
//! Every interesting run of the simulator is a sequence of commands at
//! the chip boundary, and the whole stack is deterministic given a
//! profile and a seed. This crate exploits that: attach a recording sink
//! to a [`DramChip`](dram_sim::DramChip), capture every command with its
//! timestamp and outcome, write the run to a compact versioned binary
//! format, and later *replay* it on a fresh chip — proving bit-for-bit
//! that the simulation still reproduces the recorded behavior, read data
//! and protocol errors included.
//!
//! The pieces:
//!
//! * [`TraceRecorder`] / [`SharedRecorder`] — ring-buffer sinks that
//!   capture [`ChipEvent`](dram_sim::ChipEvent)s into a [`Trace`].
//! * [`Trace`] — the in-memory trace; [`Trace::to_bytes`] /
//!   [`Trace::from_bytes`] for the binary format (decoding is total:
//!   malformed input yields a [`TraceError`], never a panic) and
//!   [`Trace::dump`] for human-readable text.
//! * [`replay_on_chip`] — re-drives a fresh chip from a trace and checks
//!   every outcome against the recording; [`replay_on_chip_trusted`] is
//!   the decoded-command fast path for streams already proven once (same
//!   drive, header identity checks only, no per-event comparison).
//! * [`TraceVerifier`] / [`SharedVerifier`] — the inverse sink: run a
//!   live experiment and check it against a recorded trace as it goes.
//! * [`diff_traces`] — structural comparison for golden-trace debugging.
//!
//! # Example
//!
//! ```
//! use dram_sim::{ChipProfile, Command, DramChip, Time};
//! use dram_trace::{replay_on_chip, SharedRecorder, Trace};
//!
//! let profile = ChipProfile::test_small();
//! let recorder = SharedRecorder::unbounded();
//! let mut chip = DramChip::new(profile.clone(), 42);
//! chip.set_sink(recorder.sink());
//!
//! let mut t = Time::from_ns(100);
//! chip.issue(Command::Activate { bank: 0, row: 7 }, t).unwrap();
//! t += chip.timing().trcd;
//! chip.issue(Command::Read { bank: 0, col: 0 }, t).unwrap();
//!
//! let trace = recorder.finish(&profile, 42);
//! let bytes = trace.to_bytes();
//! let decoded = Trace::from_bytes(&bytes).unwrap();
//! let stats = replay_on_chip(&decoded, &profile).unwrap();
//! assert_eq!(stats.reads_verified, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diff;
pub mod error;
pub mod event;
pub mod format;
pub mod index;
pub mod lake;
pub mod metrics;
pub mod query;
pub mod record;
pub mod replay;
pub mod varint;

pub use diff::{diff_traces, TraceDiff};
pub use error::{ReplayError, TraceError};
pub use event::TraceEvent;
pub use format::{Trace, TraceHeader, INTERNAL_ERROR_PLACEHOLDER, MAGIC, VERSION};
pub use index::{
    SegmentMeta, TraceIndex, DEFAULT_SEGMENT_PREFIXES, PHASE_MARKER_PREFIX, SEGMENT_MNEMONICS,
    SHARD_MARKER_PREFIX, SPAN_MARKER_PREFIX,
};
pub use lake::{decode_container, split_container, Container, IndexedTrace};
pub use metrics::trace_metrics;
pub use query::{query_bytes, query_path, Query, QueryHit, QueryReport};
pub use record::{Divergence, SharedRecorder, SharedVerifier, TraceRecorder, TraceVerifier};
pub use replay::{replay_on_chip, replay_on_chip_trusted, ReplayStats};

use dram_sim::profile::ChipProfile;

/// FNV-1a 64-bit hash, used for dossier digests and geometry hashes.
/// Stable across platforms and releases by construction; not
/// collision-resistant against adversaries, which golden-trace regression
/// does not need.
///
/// The canonical implementation lives in [`dram_sim::digest`] (profile
/// and geometry digests hash there too); this re-export keeps the
/// historical `dram_trace::fnv1a_64` path working.
pub use dram_sim::digest::fnv1a_64;

/// Hashes the externally visible geometry and timing of a profile.
///
/// Stored in every trace header and checked before replay: if a profile
/// definition changes shape (banks, rows, row width, read width, column
/// count, or any JEDEC timing), old traces are rejected with
/// [`ReplayError::GeometryMismatch`] instead of diverging confusingly
/// halfway through.
pub fn geometry_hash(profile: &ChipProfile) -> u64 {
    let mut bytes = Vec::with_capacity(96);
    bytes.extend_from_slice(profile.label().as_bytes());
    for v in [
        u64::from(profile.banks),
        u64::from(profile.rows_per_bank),
        u64::from(profile.row_bits),
        u64::from(profile.io_width.rd_bits()),
        u64::from(profile.cols_per_row()),
        u64::from(profile.density_gbit),
        profile.timing.tck.as_ps(),
        profile.timing.trcd.as_ps(),
        profile.timing.tras.as_ps(),
        profile.timing.trp.as_ps(),
        profile.timing.trfc.as_ps(),
        profile.timing.trefw.as_ps(),
    ] {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a_64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn geometry_hash_distinguishes_profiles_and_is_stable() {
        let a = geometry_hash(&ChipProfile::test_small());
        let b = geometry_hash(&ChipProfile::test_small_interleaved());
        let c = geometry_hash(&ChipProfile::mfr_a_x4_2021());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, geometry_hash(&ChipProfile::test_small()));
    }
}
