//! LEB128 variable-length integers with zigzag signed mapping.
//!
//! Timestamps in a trace are stored as zigzag-encoded deltas from the
//! previous timed event, so a steady command stream costs one or two
//! bytes per timestamp regardless of absolute simulation time.

/// Why a varint failed to decode; callers map this into a contextual
/// [`TraceError`](crate::TraceError).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarintFault {
    /// Input ran out mid-varint.
    Truncated,
    /// More than 10 continuation bytes — cannot fit a `u64`.
    Overflow,
}

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn encode_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-mapped then LEB128-encoded.
pub fn encode_i64(out: &mut Vec<u8>, v: i64) {
    encode_u64(out, zigzag(v));
}

/// Maps a signed value to an unsigned one so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Decodes one LEB128 varint starting at `*pos`, advancing `*pos` past it.
pub(crate) fn decode_u64(buf: &[u8], pos: &mut usize) -> Result<u64, VarintFault> {
    let mut v: u64 = 0;
    for shift_step in 0..10u32 {
        let byte = *buf.get(*pos).ok_or(VarintFault::Truncated)?;
        *pos += 1;
        let payload = (byte & 0x7f) as u64;
        let shift = shift_step * 7;
        // The 10th byte may only carry the single remaining bit of a u64.
        if shift == 63 && payload > 1 {
            return Err(VarintFault::Overflow);
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(VarintFault::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode_u64(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut pos = 0;
            assert_eq!(decode_u64(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_round_trips_via_zigzag() {
        for v in [0i64, 1, -1, 63, -64, 64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            encode_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(decode_u64(&buf, &mut pos).map(unzigzag), Ok(v));
        }
        // Small deltas stay in one byte.
        let mut buf = Vec::new();
        encode_i64(&mut buf, -2);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_and_overlong_varints_are_errors() {
        let mut pos = 0;
        assert_eq!(decode_u64(&[], &mut pos), Err(VarintFault::Truncated));
        let mut pos = 0;
        assert_eq!(
            decode_u64(&[0x80, 0x80], &mut pos),
            Err(VarintFault::Truncated)
        );
        // 10 continuation bytes, all with the high bit set.
        let mut pos = 0;
        assert_eq!(
            decode_u64(&[0x80; 11], &mut pos),
            Err(VarintFault::Overflow)
        );
        // A 10th byte carrying more than the last u64 bit.
        let mut bytes = vec![0x80u8; 9];
        bytes.push(0x02);
        let mut pos = 0;
        assert_eq!(decode_u64(&bytes, &mut pos), Err(VarintFault::Overflow));
    }
}
