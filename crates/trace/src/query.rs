//! The query engine over indexed traces: conjunctive predicates, index
//! pruning so only candidate segments decode, and directory-wide scans.
//!
//! A [`Query`] combines time-range, bank, command-mix, and
//! marker-prefix predicates (all conjunctive) with per-segment min/max
//! matched-count bounds. Running one over a file first prunes segments
//! whose index metadata cannot match — wrong marker, disjoint bank
//! set, zero count for every wanted mnemonic, or time bounds outside
//! the range — then decodes only the survivors and counts events that
//! satisfy every predicate. [`QueryReport::segments_decoded`] against
//! [`QueryReport::segments`] shows how much work the index saved.

use crate::error::TraceError;
use crate::event::TraceEvent;
use crate::index::{event_bank, event_mnemonic, event_op_index, SegmentMeta, SEGMENT_MNEMONICS};
use crate::lake::IndexedTrace;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A conjunctive predicate over trace events plus per-segment count
/// bounds. Empty (`Query::default()`) matches every event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Query {
    /// Keep events at or after this timestamp (picoseconds, inclusive).
    /// With either time bound set, untimed events (markers,
    /// temperature changes) never match.
    pub from_ps: Option<u64>,
    /// Keep events at or before this timestamp (picoseconds, inclusive).
    pub to_ps: Option<u64>,
    /// Keep events addressing one of these banks. Events without a
    /// bank (`REF`, refresh windows, markers, temperature) never match
    /// a bank predicate.
    pub banks: Option<Vec<u32>>,
    /// Keep events whose mnemonic ([`SEGMENT_MNEMONICS`]) is in this
    /// set — the command-mix predicate.
    pub mnemonics: Option<Vec<String>>,
    /// Keep only segments whose opening marker label starts with this
    /// prefix (the unmarked leading segment has label `""`).
    pub marker_prefix: Option<String>,
    /// Report a segment only if at least this many events matched.
    /// Default 1 — segments with no matches are not hits. `0` lists
    /// every candidate segment and disables count-based pruning.
    pub min_count: Option<u64>,
    /// Report a segment only if at most this many events matched.
    pub max_count: Option<u64>,
}

impl Query {
    /// Whether a single event satisfies every per-event predicate.
    pub fn matches_event(&self, ev: &TraceEvent) -> bool {
        if self.from_ps.is_some() || self.to_ps.is_some() {
            let Some(at) = ev.at() else { return false };
            let ps = at.as_ps();
            if self.from_ps.is_some_and(|f| ps < f) || self.to_ps.is_some_and(|t| ps > t) {
                return false;
            }
        }
        if let Some(banks) = &self.banks {
            match event_bank(ev) {
                Some(bank) if banks.contains(&bank) => {}
                _ => return false,
            }
        }
        if let Some(mnemonics) = &self.mnemonics {
            if !mnemonics.iter().any(|m| m == event_mnemonic(ev)) {
                return false;
            }
        }
        true
    }

    /// Whether a segment's index metadata leaves any chance of a
    /// match; `false` means the segment can be skipped without
    /// decoding. With `min_count == Some(0)` every candidate segment
    /// must be reported, so only the marker predicate prunes.
    pub fn segment_may_match(&self, seg: &SegmentMeta) -> bool {
        if let Some(prefix) = &self.marker_prefix {
            if !seg.label.starts_with(prefix.as_str()) {
                return false;
            }
        }
        if self.min_count == Some(0) {
            return true;
        }
        if !seg.overlaps_ps(self.from_ps, self.to_ps) {
            return false;
        }
        if let Some(banks) = &self.banks {
            if !banks.iter().any(|b| seg.has_bank(*b)) {
                return false;
            }
        }
        if let Some(mnemonics) = &self.mnemonics {
            if mnemonics.iter().map(|m| seg.op_count(m)).sum::<u64>() == 0 {
                return false;
            }
        }
        true
    }

    /// Whether a segment's matched-event count is within the reporting
    /// bounds.
    fn count_in_bounds(&self, matched: u64) -> bool {
        matched >= self.min_count.unwrap_or(1) && self.max_count.is_none_or(|m| matched <= m)
    }
}

/// One reported segment: where it is and what matched inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryHit {
    /// File the segment lives in (as given to the query).
    pub file: String,
    /// Segment index within its file.
    pub segment: usize,
    /// The segment's opening marker label (`""` for unmarked).
    pub label: String,
    /// Events in the segment.
    pub events: u64,
    /// Events that satisfied every predicate.
    pub matched: u64,
    /// Matched events per mnemonic, [`SEGMENT_MNEMONICS`] order.
    pub ops: [u64; 10],
    /// Smallest matched timestamp, if any matched event was timed.
    pub min_ps: Option<u64>,
    /// Largest matched timestamp, if any matched event was timed.
    pub max_ps: Option<u64>,
}

/// The outcome of running one query over one or many trace files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryReport {
    /// Files scanned.
    pub files: usize,
    /// Segments across all files.
    pub segments: usize,
    /// Segments that had to be decoded (survived index pruning).
    pub segments_decoded: usize,
    /// Total matched events across all hits.
    pub matched: u64,
    /// Reported segments, in file order then segment order.
    pub hits: Vec<QueryHit>,
}

impl QueryReport {
    /// Whether the query matched anything (at least one hit).
    pub fn is_match(&self) -> bool {
        !self.hits.is_empty()
    }

    /// Renders the report as one deterministic JSON object (sorted
    /// hits, fixed key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"files\":{},\"segments\":{},\"segments_decoded\":{},\"matched\":{},\"hits\":[",
            self.files, self.segments, self.segments_decoded, self.matched
        );
        for (i, hit) in self.hits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":{},\"segment\":{},\"label\":{},\"events\":{},\"matched\":{}",
                json_string(&hit.file),
                hit.segment,
                json_string(&hit.label),
                hit.events,
                hit.matched
            );
            out.push_str(",\"ops\":{");
            let mut first = true;
            for (m, count) in SEGMENT_MNEMONICS.iter().zip(hit.ops) {
                if count == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{m}\":{count}");
            }
            out.push('}');
            if let (Some(min), Some(max)) = (hit.min_ps, hit.max_ps) {
                let _ = write!(out, ",\"min_ps\":{min},\"max_ps\":{max}");
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs a query over one already-opened trace, labeling hits with
/// `file`. Returns the hits plus how many segments were decoded.
pub fn query_indexed(
    file: &str,
    trace: &IndexedTrace,
    query: &Query,
) -> Result<(Vec<QueryHit>, usize), TraceError> {
    let mut hits = Vec::new();
    let mut decoded = 0usize;
    for (i, seg) in trace.segments().iter().enumerate() {
        if !query.segment_may_match(seg) {
            continue;
        }
        decoded += 1;
        let events = trace.decode_segment(i)?;
        let mut ops = [0u64; 10];
        let mut matched = 0u64;
        let mut min_ps = None;
        let mut max_ps = None;
        for ev in &events {
            if !query.matches_event(ev) {
                continue;
            }
            matched += 1;
            ops[event_op_index(ev)] += 1;
            if let Some(at) = ev.at() {
                let ps = at.as_ps();
                min_ps = Some(min_ps.map_or(ps, |m: u64| m.min(ps)));
                max_ps = Some(max_ps.map_or(ps, |m: u64| m.max(ps)));
            }
        }
        if query.count_in_bounds(matched) {
            hits.push(QueryHit {
                file: file.to_string(),
                segment: i,
                label: seg.label.clone(),
                events: seg.events,
                matched,
                ops,
                min_ps,
                max_ps,
            });
        }
    }
    Ok((hits, decoded))
}

/// Runs a query over raw container bytes (either version).
pub fn query_bytes(file: &str, bytes: &[u8], query: &Query) -> Result<QueryReport, TraceError> {
    let trace = IndexedTrace::from_bytes(bytes)?;
    let (hits, decoded) = query_indexed(file, &trace, query)?;
    Ok(QueryReport {
        files: 1,
        segments: trace.segments().len(),
        segments_decoded: decoded,
        matched: hits.iter().map(|h| h.matched).sum(),
        hits,
    })
}

/// Runs a query over a trace file or over every `*.trace` file in a
/// directory (sorted by name). Errors carry the offending path.
pub fn query_path(path: &Path, query: &Query) -> Result<QueryReport, String> {
    let files = collect_trace_files(path)?;
    let mut report = QueryReport::default();
    for file in &files {
        let bytes = std::fs::read(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let one = query_bytes(&file.display().to_string(), &bytes, query)
            .map_err(|e| format!("{}: {e}", file.display()))?;
        report.files += 1;
        report.segments += one.segments;
        report.segments_decoded += one.segments_decoded;
        report.matched += one.matched;
        report.hits.extend(one.hits);
    }
    Ok(report)
}

/// Expands a path into the trace files it names: the file itself, or a
/// directory's `*.trace` entries sorted by name.
pub fn collect_trace_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if meta.is_file() {
        return Ok(vec![path.to_path_buf()]);
    }
    let entries = std::fs::read_dir(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", path.display()))?;
        let p = entry.path();
        if p.is_file() && p.extension().is_some_and(|ext| ext == "trace") {
            files.push(p);
        }
    }
    if files.is_empty() {
        return Err(format!("{}: no .trace files found", path.display()));
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Trace, TraceHeader};
    use dram_sim::chip::Command;
    use dram_sim::sink::CommandOutcome;
    use dram_sim::time::Time;

    fn sample_trace() -> Trace {
        let mut events = Vec::new();
        for (bank, span) in [(0u32, "span:warmup"), (1, "span:trr_window")] {
            events.push(TraceEvent::Marker { label: span.into() });
            for i in 0..5u64 {
                events.push(TraceEvent::Command {
                    cmd: Command::Activate {
                        bank,
                        row: i as u32,
                    },
                    at: Time::from_ns(100 * u64::from(bank) + i * 10),
                    outcome: CommandOutcome::Accepted,
                });
            }
            events.push(TraceEvent::Command {
                cmd: Command::Refresh,
                at: Time::from_ns(100 * u64::from(bank) + 90),
                outcome: CommandOutcome::Accepted,
            });
        }
        Trace {
            header: TraceHeader {
                profile_label: "test".into(),
                seed: 1,
                geometry_hash: 2,
                dossier_digest: None,
                dropped: 0,
                meta: vec![],
            },
            events,
        }
    }

    #[test]
    fn predicates_are_conjunctive_and_prune_segments() {
        let bytes = sample_trace().to_bytes_indexed();
        // Bank 1 ACTs inside the trr window, within a time range.
        let query = Query {
            from_ps: Some(Time::from_ns(100).as_ps()),
            to_ps: Some(Time::from_ns(130).as_ps()),
            banks: Some(vec![1]),
            mnemonics: Some(vec!["act".into()]),
            marker_prefix: Some("span:trr".into()),
            ..Query::default()
        };
        let report = query_bytes("t", &bytes, &query).expect("queries");
        assert_eq!(report.segments, 2);
        assert_eq!(report.segments_decoded, 1, "warmup segment must be pruned");
        assert_eq!(report.hits.len(), 1);
        let hit = &report.hits[0];
        assert_eq!(hit.label, "span:trr_window");
        assert_eq!(hit.matched, 4); // ACTs at 100, 110, 120, 130 ns
        assert_eq!(hit.ops[0], 4);
        assert_eq!(hit.min_ps, Some(Time::from_ns(100).as_ps()));
        assert_eq!(hit.max_ps, Some(Time::from_ns(130).as_ps()));
        assert_eq!(report.matched, 4);
        assert!(report.is_match());
    }

    #[test]
    fn bank_pruning_skips_disjoint_segments_without_decoding() {
        let bytes = sample_trace().to_bytes_indexed();
        let query = Query {
            banks: Some(vec![7]),
            ..Query::default()
        };
        let report = query_bytes("t", &bytes, &query).expect("queries");
        assert_eq!(report.segments_decoded, 0, "no segment addresses bank 7");
        assert!(!report.is_match());
        // REF has no bank, so a bank predicate never matches it.
        let ref_query = Query {
            banks: Some(vec![0]),
            mnemonics: Some(vec!["ref".into()]),
            ..Query::default()
        };
        let report = query_bytes("t", &bytes, &ref_query).expect("queries");
        assert_eq!(report.matched, 0);
    }

    #[test]
    fn min_count_zero_reports_every_candidate_segment() {
        let bytes = sample_trace().to_bytes_indexed();
        let query = Query {
            banks: Some(vec![0]),
            min_count: Some(0),
            ..Query::default()
        };
        let report = query_bytes("t", &bytes, &query).expect("queries");
        assert_eq!(report.segments_decoded, 2, "min_count=0 disables pruning");
        assert_eq!(report.hits.len(), 2);
        assert_eq!(report.hits[1].matched, 0);
        // max_count drops busy segments.
        let query = Query {
            max_count: Some(3),
            ..Query::default()
        };
        let report = query_bytes("t", &bytes, &query).expect("queries");
        assert!(report.hits.is_empty(), "both segments have 7 events");
    }

    #[test]
    fn queries_work_identically_on_v1_streams() {
        let trace = sample_trace();
        let query = Query {
            mnemonics: Some(vec!["act".into()]),
            marker_prefix: Some("span:trr".into()),
            ..Query::default()
        };
        let v1 = query_bytes("t", &trace.to_bytes(), &query).expect("v1");
        let v2 = query_bytes("t", &trace.to_bytes_indexed(), &query).expect("v2");
        assert_eq!(v1.hits, v2.hits);
        assert_eq!(v1.matched, v2.matched);
        // The v1 path had to decode everything; the v2 path skipped one.
        assert_eq!(v1.segments_decoded, 1); // marker pruning works on synthesized metadata too
        assert_eq!(v2.segments_decoded, 1);
    }

    #[test]
    fn directory_queries_scan_sorted_trace_files() {
        let dir = std::env::temp_dir().join(format!("dram_lake_query_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let trace = sample_trace();
        std::fs::write(dir.join("b.trace"), trace.to_bytes_indexed()).expect("write");
        std::fs::write(dir.join("a.trace"), trace.to_bytes()).expect("write");
        std::fs::write(dir.join("ignored.txt"), b"not a trace").expect("write");
        let query = Query {
            mnemonics: Some(vec!["act".into()]),
            ..Query::default()
        };
        let report = query_path(&dir, &query).expect("queries");
        assert_eq!(report.files, 2);
        assert_eq!(report.segments, 4);
        assert_eq!(report.matched, 20);
        assert!(report.hits[0].file.ends_with("a.trace"));
        assert!(report.hits[2].file.ends_with("b.trace"));
        // Unmatchable query: no hits, exit-1 signal for the CLI.
        let none = query_path(
            &dir,
            &Query {
                banks: Some(vec![9]),
                ..Query::default()
            },
        )
        .expect("queries");
        assert!(!none.is_match());
        let _ = std::fs::remove_dir_all(&dir);
        assert!(query_path(Path::new("/nonexistent/trace/dir"), &query).is_err());
    }

    #[test]
    fn report_json_is_deterministic_and_escaped() {
        let hit = QueryHit {
            file: "dir/a \"x\".trace".into(),
            segment: 1,
            label: "span:trr_window".into(),
            events: 7,
            matched: 4,
            ops: [4, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            min_ps: Some(100_000),
            max_ps: Some(130_000),
        };
        let report = QueryReport {
            files: 1,
            segments: 2,
            segments_decoded: 1,
            matched: 4,
            hits: vec![hit],
        };
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"files\":1,\"segments\":2,\"segments_decoded\":1,\"matched\":4,\"hits\":[{\"file\":\"dir/a \\\"x\\\".trace\",\"segment\":1,\"label\":\"span:trr_window\",\"events\":7,\"matched\":4,\"ops\":{\"act\":4},\"min_ps\":100000,\"max_ps\":130000}]}"
        );
    }
}
