//! Replay side: re-drive a fresh [`DramChip`] from a trace and prove the
//! simulation reproduces the recorded run bit-for-bit.

use crate::error::ReplayError;
use crate::event::TraceEvent;
use crate::format::Trace;
use crate::geometry_hash;
use dram_sim::chip::DramChip;
use dram_sim::profile::ChipProfile;
use dram_sim::sink::CommandOutcome;

/// Counters from one successful replay.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Trace events replayed (including markers).
    pub events: u64,
    /// Chip entry-point invocations (commands, bursts, refresh windows,
    /// temperature changes — everything except markers).
    pub entry_calls: u64,
    /// Pin-level commands the chip executed, counting every activation
    /// inside loop-accelerated bursts and refresh windows individually.
    pub commands: u64,
    /// `RD` outcomes whose recorded data was reproduced exactly.
    pub reads_verified: u64,
    /// Cells the replayed physics flipped.
    pub bitflips: u64,
}

/// Replays every event of `trace` on a fresh [`DramChip`] built from
/// `profile` and the trace's recorded seed.
///
/// Every entry-point outcome — accepted, returned read data, or the exact
/// protocol error — must match the recording; the first mismatch aborts
/// with [`ReplayError::Divergence`]. Rejected commands are re-issued too,
/// because they advance the chip clock. A clean return is therefore a
/// bit-for-bit reproduction proof: in particular every recorded `RD` data
/// word came back identical from the replayed cell physics.
pub fn replay_on_chip(trace: &Trace, profile: &ChipProfile) -> Result<ReplayStats, ReplayError> {
    drive(trace, profile, true)
}

/// Decoded-command fast path: re-drives the chip from an
/// already-verified trace without comparing outcomes per event.
///
/// Use this only for streams that a prior [`replay_on_chip`] (or the
/// recording itself) has proven bit-for-bit — golden traces in CI,
/// repeated replays of the same artifact, state reconstruction for
/// analysis. The header identity checks (profile label, geometry hash,
/// completeness) still run, because driving a trace into the wrong
/// silicon is never meaningful; only the per-event outcome comparison
/// and its divergence bookkeeping are skipped. Rejected commands are
/// re-issued and their errors discarded, exactly as the verifying
/// replay tolerates a recorded rejection. `reads_verified` is always 0
/// in the returned stats: nothing is verified on this path.
pub fn replay_on_chip_trusted(
    trace: &Trace,
    profile: &ChipProfile,
) -> Result<ReplayStats, ReplayError> {
    drive(trace, profile, false)
}

/// The shared drive loop behind both replay flavors.
fn drive(trace: &Trace, profile: &ChipProfile, verify: bool) -> Result<ReplayStats, ReplayError> {
    let label = profile.label();
    if trace.header.profile_label != label {
        return Err(ReplayError::ProfileMismatch {
            trace: trace.header.profile_label.clone(),
            profile: label,
        });
    }
    let hash = geometry_hash(profile);
    if trace.header.geometry_hash != hash {
        return Err(ReplayError::GeometryMismatch {
            trace: trace.header.geometry_hash,
            profile: hash,
        });
    }
    if trace.header.dropped > 0 {
        return Err(ReplayError::PartialTrace {
            dropped: trace.header.dropped,
        });
    }

    let mut chip = DramChip::new(profile.clone(), trace.header.seed);
    let mut stats = ReplayStats::default();
    let diverged =
        |index: usize, expected: &TraceEvent, got: &CommandOutcome| ReplayError::Divergence {
            index: index as u64,
            expected: expected.to_string(),
            got: got.to_string(),
        };
    for (index, ev) in trace.events.iter().enumerate() {
        match ev {
            TraceEvent::Command { cmd, at, outcome } => {
                stats.entry_calls += 1;
                let result = chip.issue(*cmd, *at);
                if verify {
                    let got = CommandOutcome::of_issue(&result);
                    if got != *outcome {
                        return Err(diverged(index, ev, &got));
                    }
                    if matches!(got, CommandOutcome::Data(_)) {
                        stats.reads_verified += 1;
                    }
                }
            }
            TraceEvent::Burst {
                bank,
                row,
                count,
                each_on,
                at,
                outcome,
            } => {
                stats.entry_calls += 1;
                let result = chip.activate_burst(*bank, *row, *count, *each_on, *at);
                if verify {
                    let got = CommandOutcome::of_unit(&result);
                    if got != *outcome {
                        return Err(diverged(index, ev, &got));
                    }
                }
            }
            TraceEvent::RefreshWindow { at, outcome } => {
                stats.entry_calls += 1;
                let result = chip.refresh_window(*at);
                if verify {
                    let got = CommandOutcome::of_unit(&result);
                    if got != *outcome {
                        return Err(diverged(index, ev, &got));
                    }
                }
            }
            TraceEvent::SetTemperature { celsius } => {
                stats.entry_calls += 1;
                chip.set_temperature(*celsius);
            }
            TraceEvent::Marker { .. } => {}
        }
        stats.events += 1;
    }
    let chip_stats = chip.stats();
    stats.commands =
        chip_stats.activations + chip_stats.reads + chip_stats.writes + chip_stats.refreshes;
    stats.bitflips = chip_stats.bitflips;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SharedRecorder;
    use dram_sim::chip::Command;
    use dram_sim::time::Time;

    /// Records a small but physics-rich run on a real chip: row writes,
    /// a hammer burst past the flip threshold, reads of the victims.
    fn record_run(profile: &ChipProfile, seed: u64) -> Trace {
        let recorder = SharedRecorder::unbounded();
        let mut chip = DramChip::new(profile.clone(), seed);
        chip.set_sink(recorder.sink());
        let timing = *chip.timing();
        let mut t = Time::from_ns(100);

        chip.mark("setup");
        for row in [20u32, 21, 22] {
            chip.issue(Command::Activate { bank: 0, row }, t)
                .expect("act");
            t += timing.trcd;
            for col in 0..4 {
                chip.issue(
                    Command::Write {
                        bank: 0,
                        col,
                        data: u64::MAX,
                    },
                    t,
                )
                .expect("wr");
                t += timing.tck * 4;
            }
            t += timing.tras;
            chip.issue(Command::Precharge { bank: 0 }, t).expect("pre");
            t += timing.trp;
        }

        chip.mark("hammer");
        // A protocol error on purpose: rejected commands must replay too.
        let err = chip.issue(Command::Read { bank: 0, col: 0 }, t);
        assert!(err.is_err());
        let end = chip
            .activate_burst(0, 21, 2_000_000, timing.tras, t)
            .expect("burst");
        t = end + timing.trp;

        chip.mark("readout");
        for row in [20u32, 22] {
            chip.issue(Command::Activate { bank: 0, row }, t)
                .expect("act");
            t += timing.trcd;
            for col in 0..4 {
                chip.issue(Command::Read { bank: 0, col }, t).expect("rd");
                t += timing.tck * 4;
            }
            t += timing.tras;
            chip.issue(Command::Precharge { bank: 0 }, t).expect("pre");
            t += timing.trp;
        }
        chip.set_temperature(45.0);
        chip.refresh_window(t + Time::from_ms(1)).expect("refw");

        chip.clear_sink();
        let mut trace = recorder.finish(profile, seed);
        assert_eq!(trace.header.dropped, 0);
        trace
            .header
            .meta
            .push(("scenario".into(), "hammer-readout".into()));
        trace
    }

    #[test]
    fn recorded_run_replays_bit_for_bit() {
        let profile = ChipProfile::test_small();
        let trace = record_run(&profile, 0xD1CE);
        assert!(trace.events.len() > 30);

        let stats = replay_on_chip(&trace, &profile).expect("replay verifies");
        assert_eq!(stats.events, trace.events.len() as u64);
        assert_eq!(stats.reads_verified, 8);
        // The burst replays as 2M individual activations in chip stats.
        assert!(stats.commands > 2_000_000, "{stats:?}");
        assert!(stats.bitflips > 0, "hammer run should flip cells");

        // And survives a serialization round trip.
        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("decodes");
        assert_eq!(decoded, trace);
        assert_eq!(
            replay_on_chip(&decoded, &profile).expect("replay decoded"),
            stats
        );
    }

    #[test]
    fn trusted_replay_matches_verified_final_state() {
        let profile = ChipProfile::test_small();
        let trace = record_run(&profile, 0xD1CE);

        let verified = replay_on_chip(&trace, &profile).expect("verified replay");
        let trusted = replay_on_chip_trusted(&trace, &profile).expect("trusted replay");

        // Same chip driven the same way: everything except the
        // verification counter must agree.
        assert_eq!(trusted.events, verified.events);
        assert_eq!(trusted.entry_calls, verified.entry_calls);
        assert_eq!(trusted.commands, verified.commands);
        assert_eq!(trusted.bitflips, verified.bitflips);
        assert_eq!(trusted.reads_verified, 0, "trusted path verifies nothing");

        // The identity checks still guard the fast path.
        let other = ChipProfile::test_small_interleaved();
        assert!(matches!(
            replay_on_chip_trusted(&trace, &other),
            Err(ReplayError::ProfileMismatch { .. })
        ));
        let mut partial = trace.clone();
        partial.header.dropped = 1;
        assert!(matches!(
            replay_on_chip_trusted(&partial, &profile),
            Err(ReplayError::PartialTrace { dropped: 1 })
        ));

        // And a tampered outcome is (by design) NOT caught here: the
        // fast path trusts the stream and just re-drives the chip.
        let mut tampered = trace.clone();
        let target = tampered
            .events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    TraceEvent::Command {
                        outcome: CommandOutcome::Data(_),
                        ..
                    }
                )
            })
            .expect("trace has a read");
        if let TraceEvent::Command { outcome, .. } = &mut tampered.events[target] {
            *outcome = CommandOutcome::Data(0x1234_5678);
        }
        assert_eq!(
            replay_on_chip_trusted(&tampered, &profile).expect("trusted ignores outcomes"),
            trusted
        );
    }

    #[test]
    fn wrong_seed_or_tampered_data_diverges() {
        let profile = ChipProfile::test_small();
        let mut trace = record_run(&profile, 0xD1CE);

        // A different seed moves the weakest cells: some read must differ.
        let mut reseeded = trace.clone();
        reseeded.header.seed ^= 1;
        let err = replay_on_chip(&reseeded, &profile).expect_err("reseeded replay diverges");
        assert!(matches!(err, ReplayError::Divergence { .. }), "{err}");

        // Tampering with one recorded read outcome is caught.
        let target = trace
            .events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    TraceEvent::Command {
                        outcome: CommandOutcome::Data(_),
                        ..
                    }
                )
            })
            .expect("trace has a read");
        if let TraceEvent::Command { outcome, .. } = &mut trace.events[target] {
            *outcome = CommandOutcome::Data(0x1234_5678);
        }
        let err = replay_on_chip(&trace, &profile).expect_err("tampered replay diverges");
        match err {
            ReplayError::Divergence { index, .. } => assert_eq!(index, target as u64),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn replay_refuses_mismatched_identity_and_partial_traces() {
        let profile = ChipProfile::test_small();
        let trace = record_run(&profile, 1);

        let other = ChipProfile::test_small_interleaved();
        assert!(matches!(
            replay_on_chip(&trace, &other),
            Err(ReplayError::ProfileMismatch { .. })
        ));

        let mut wrong_geometry = trace.clone();
        wrong_geometry.header.geometry_hash ^= 1;
        assert!(matches!(
            replay_on_chip(&wrong_geometry, &profile),
            Err(ReplayError::GeometryMismatch { .. })
        ));

        let mut partial = trace.clone();
        partial.header.dropped = 3;
        assert!(matches!(
            replay_on_chip(&partial, &profile),
            Err(ReplayError::PartialTrace { dropped: 3 })
        ));
    }
}
