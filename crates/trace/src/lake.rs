//! The indexed trace container ("trace lake" storage layer): writing v2
//! files, detecting and stripping the index footer, and decoding
//! segments independently — including in parallel.
//!
//! A v2 container is the unmodified v1 byte stream followed by an
//! [index section](crate::index) and a fixed trailer:
//!
//! ```text
//! [ v1 payload ... ][ index section ][ index len u64 | index digest u64 | b"DRTRIDX1" ]
//! ```
//!
//! Because the payload bytes are untouched, every v1 consumer keeps
//! working on the payload slice, golden traces and dossier digests stay
//! byte-identical, and a v2 file degrades to a v1 decode when its index
//! is damaged but the payload is intact. A v1 file (no trailer) reads
//! as one synthesized whole-file segment list, split at the same
//! markers in memory, so segment-level filters behave identically —
//! only without the seek savings.

use crate::error::TraceError;
use crate::event::TraceEvent;
use crate::format::{self, Reader, Trace, TraceHeader};
use crate::index::{
    event_bank, event_op_index, SegmentMeta, TraceIndex, DEFAULT_SEGMENT_PREFIXES, TRAILER_LEN,
    TRAILER_MAGIC,
};
use dram_sim::digest::fnv1a_64;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What the tail of a trace file turned out to contain.
#[derive(Debug)]
pub enum Container<'a> {
    /// No index trailer: a plain v1 stream.
    V1(&'a [u8]),
    /// A well-formed v2 container: payload plus its decoded index. The
    /// index is structurally valid but not yet checked against the
    /// payload (see [`TraceIndex::validate`]).
    V2 {
        /// The unmodified v1 byte stream.
        payload: &'a [u8],
        /// The decoded index footer.
        index: TraceIndex,
    },
    /// The trailer magic is present but the index is damaged. When the
    /// trailer's length field still locates the payload boundary the
    /// payload slice is recovered so callers can fall back to a v1
    /// whole-file decode.
    DamagedIndex {
        /// The payload slice, when the boundary could be recovered.
        payload: Option<&'a [u8]>,
        /// Why the index was rejected.
        error: TraceError,
    },
}

/// Classifies a byte stream as v1 or v2 and decodes the index if there
/// is one. Total: never panics, and index damage comes back as
/// [`Container::DamagedIndex`] rather than an `Err` so the payload
/// slice survives for fallback.
pub fn split_container(bytes: &[u8]) -> Container<'_> {
    let len = bytes.len();
    if len < TRAILER_LEN || bytes[len - 8..] != TRAILER_MAGIC {
        return Container::V1(bytes);
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[len - TRAILER_LEN..len - 16]);
    let index_len = u64::from_le_bytes(raw);
    raw.copy_from_slice(&bytes[len - 16..len - 8]);
    let index_digest = u64::from_le_bytes(raw);
    let body_len = (len - TRAILER_LEN) as u64;
    if index_len > body_len {
        return Container::DamagedIndex {
            payload: None,
            error: TraceError::CorruptIndex {
                offset: 0,
                what: "index length exceeds file",
            },
        };
    }
    let index_start = (body_len - index_len) as usize;
    let section = &bytes[index_start..len - TRAILER_LEN];
    let payload = &bytes[..index_start];
    if fnv1a_64(section) != index_digest {
        return Container::DamagedIndex {
            payload: Some(payload),
            error: TraceError::CorruptIndex {
                offset: 0,
                what: "index digest mismatch",
            },
        };
    }
    match TraceIndex::from_bytes(section) {
        Ok(index) => Container::V2 { payload, index },
        Err(error) => Container::DamagedIndex {
            payload: Some(payload),
            error,
        },
    }
}

/// Decodes a trace from either container version, ignoring the index:
/// the v2 footer is stripped and the payload decoded whole. A damaged
/// index falls back to the payload when it is intact.
pub fn decode_container(bytes: &[u8]) -> Result<Trace, TraceError> {
    match split_container(bytes) {
        Container::V1(payload) | Container::V2 { payload, .. } => Trace::from_bytes(payload),
        Container::DamagedIndex {
            payload: Some(payload),
            error,
        } => Trace::from_bytes(payload).map_err(|_| error),
        Container::DamagedIndex {
            payload: None,
            error,
        } => Err(error),
    }
}

impl Trace {
    /// Serializes the trace as a v2 indexed container with segments
    /// opened at the [`DEFAULT_SEGMENT_PREFIXES`] markers. The payload
    /// bytes are exactly [`to_bytes`](Self::to_bytes).
    pub fn to_bytes_indexed(&self) -> Vec<u8> {
        self.to_bytes_indexed_with(&DEFAULT_SEGMENT_PREFIXES)
    }

    /// Serializes the trace as a v2 indexed container, opening a new
    /// segment at every marker whose label starts with one of
    /// `prefixes` ([`split_at_markers`](Self::split_at_markers)
    /// semantics: the marker stays the first event of its segment, and
    /// events before the first match form an unlabeled leading
    /// segment).
    pub fn to_bytes_indexed_with(&self, prefixes: &[&str]) -> Vec<u8> {
        let mut out = Vec::with_capacity(96 + self.events.len() * 4);
        self.encode_header_and_count(&mut out);
        let events_offset = out.len() as u64;
        let mut prev_ps = 0u64;
        let mut segments: Vec<SegmentMeta> = Vec::new();
        let mut open: Option<SegmentMeta> = None;
        for ev in &self.events {
            let opens = matches!(
                ev,
                TraceEvent::Marker { label } if prefixes.iter().any(|p| label.starts_with(p))
            );
            if opens || open.is_none() {
                if let Some(seg) = open.take() {
                    segments.push(seal_segment(seg, &out));
                }
                let label = match ev {
                    TraceEvent::Marker { label } if opens => label.clone(),
                    _ => String::new(),
                };
                open = Some(SegmentMeta {
                    label,
                    offset: out.len() as u64,
                    len: 0,
                    base_ps: prev_ps,
                    min_ps: None,
                    max_ps: None,
                    events: 0,
                    banks: Vec::new(),
                    ops: [0; 10],
                    digest: 0,
                });
            }
            format::encode_event(&mut out, ev, &mut prev_ps);
            let seg = open.as_mut().expect("a segment was just ensured");
            seg.events += 1;
            seg.ops[event_op_index(ev)] += 1;
            if let Some(bank) = event_bank(ev) {
                if let Err(slot) = seg.banks.binary_search(&bank) {
                    seg.banks.insert(slot, bank);
                }
            }
            if let Some(at) = ev.at() {
                let ps = at.as_ps();
                seg.min_ps = Some(seg.min_ps.map_or(ps, |m| m.min(ps)));
                seg.max_ps = Some(seg.max_ps.map_or(ps, |m| m.max(ps)));
            }
        }
        if let Some(seg) = open.take() {
            segments.push(seal_segment(seg, &out));
        }
        let index = TraceIndex {
            events_offset,
            segments,
        };
        let section = index.to_bytes();
        let digest = fnv1a_64(&section);
        out.extend_from_slice(&section);
        out.extend_from_slice(&(section.len() as u64).to_le_bytes());
        out.extend_from_slice(&digest.to_le_bytes());
        out.extend_from_slice(&TRAILER_MAGIC);
        out
    }

    /// Decodes a trace from either container version, decoding v2
    /// segments concurrently on `workers` threads (`0` = one per
    /// available core). Produces exactly what
    /// [`Trace::from_bytes`](Self::from_bytes) produces on the payload.
    pub fn decode_indexed_parallel(bytes: &[u8], workers: usize) -> Result<Trace, TraceError> {
        IndexedTrace::from_bytes(bytes)?.decode_parallel(workers)
    }
}

/// Closes a segment under construction: fixes its length and digest
/// from the bytes encoded since its offset.
fn seal_segment(mut seg: SegmentMeta, out: &[u8]) -> SegmentMeta {
    let start = seg.offset as usize;
    seg.len = (out.len() - start) as u64;
    seg.digest = fnv1a_64(&out[start..]);
    seg
}

/// A trace file opened through its index: the header is decoded, the
/// events are not — segments decode on demand, independently, so
/// filtered reads touch only the bytes they need.
///
/// Opening is total and version-transparent:
///
/// * a v2 container with a healthy index opens seekably;
/// * a v2 container whose index is damaged but whose payload is intact
///   falls back to a whole-file decode, recording why in
///   [`fallback`](Self::fallback);
/// * a v1 stream decodes whole and its segments are synthesized in
///   memory at the same [`DEFAULT_SEGMENT_PREFIXES`] markers, so
///   segment-level filters behave identically (synthesized metadata
///   carries zero `offset`/`len`/`digest`, since no per-segment byte
///   ranges exist on disk).
#[derive(Debug)]
pub struct IndexedTrace {
    header: TraceHeader,
    payload: Vec<u8>,
    segments: Vec<SegmentMeta>,
    /// Cumulative event index at each segment's start.
    event_starts: Vec<u64>,
    /// Whole-file decode retained for v1/fallback opens.
    cached: Option<Vec<TraceEvent>>,
    fallback: Option<TraceError>,
}

impl IndexedTrace {
    /// Opens a trace file from its bytes; see the type docs for the
    /// fallback ladder. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<IndexedTrace, TraceError> {
        match split_container(bytes) {
            Container::V2 { payload, index } => {
                let mut r = Reader::new(payload);
                let (header, event_count) = Trace::decode_header_and_count(&mut r)?;
                let checked = index
                    .validate(payload.len() as u64, event_count)
                    .and_then(|()| {
                        if index.events_offset != r.pos() as u64 {
                            Err(TraceError::CorruptIndex {
                                offset: 0,
                                what: "events offset disagrees with header",
                            })
                        } else {
                            Ok(())
                        }
                    });
                match checked {
                    Ok(()) => {
                        index.verify_payload(payload)?;
                        Ok(IndexedTrace::from_parts(header, payload.to_vec(), index))
                    }
                    // The index contradicts the payload; trust the payload.
                    Err(error) => match Trace::from_bytes(payload) {
                        Ok(trace) => Ok(IndexedTrace::synthesize(trace, Some(error))),
                        Err(_) => Err(error),
                    },
                }
            }
            Container::V1(payload) => {
                Trace::from_bytes(payload).map(|t| IndexedTrace::synthesize(t, None))
            }
            Container::DamagedIndex {
                payload: Some(payload),
                error,
            } => match Trace::from_bytes(payload) {
                Ok(trace) => Ok(IndexedTrace::synthesize(trace, Some(error))),
                Err(_) => Err(error),
            },
            Container::DamagedIndex {
                payload: None,
                error,
            } => Err(error),
        }
    }

    fn from_parts(header: TraceHeader, payload: Vec<u8>, index: TraceIndex) -> IndexedTrace {
        let event_starts = cumulative_starts(&index.segments);
        IndexedTrace {
            header,
            payload,
            segments: index.segments,
            event_starts,
            cached: None,
            fallback: None,
        }
    }

    /// Builds the in-memory form of a fully decoded trace: segments
    /// synthesized at the default markers, events cached.
    fn synthesize(trace: Trace, fallback: Option<TraceError>) -> IndexedTrace {
        let mut segments: Vec<SegmentMeta> = Vec::new();
        let mut open: Option<SegmentMeta> = None;
        for ev in &trace.events {
            let opens = matches!(
                ev,
                TraceEvent::Marker { label }
                    if DEFAULT_SEGMENT_PREFIXES.iter().any(|p| label.starts_with(p))
            );
            if opens || open.is_none() {
                if let Some(seg) = open.take() {
                    segments.push(seg);
                }
                let label = match ev {
                    TraceEvent::Marker { label } if opens => label.clone(),
                    _ => String::new(),
                };
                open = Some(SegmentMeta {
                    label,
                    offset: 0,
                    len: 0,
                    base_ps: 0,
                    min_ps: None,
                    max_ps: None,
                    events: 0,
                    banks: Vec::new(),
                    ops: [0; 10],
                    digest: 0,
                });
            }
            let seg = open.as_mut().expect("a segment was just ensured");
            seg.events += 1;
            seg.ops[event_op_index(ev)] += 1;
            if let Some(bank) = event_bank(ev) {
                if let Err(slot) = seg.banks.binary_search(&bank) {
                    seg.banks.insert(slot, bank);
                }
            }
            if let Some(at) = ev.at() {
                let ps = at.as_ps();
                seg.min_ps = Some(seg.min_ps.map_or(ps, |m| m.min(ps)));
                seg.max_ps = Some(seg.max_ps.map_or(ps, |m| m.max(ps)));
            }
        }
        segments.extend(open);
        let event_starts = cumulative_starts(&segments);
        IndexedTrace {
            header: trace.header,
            payload: Vec::new(),
            segments,
            event_starts,
            cached: Some(trace.events),
            fallback,
        }
    }

    /// The decoded run metadata.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Per-segment metadata, in stream order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// Index of the first event of segment `i` within the whole stream.
    pub fn segment_event_start(&self, i: usize) -> u64 {
        self.event_starts.get(i).copied().unwrap_or(0)
    }

    /// Whether segments decode independently from an on-disk index
    /// (`false` for v1 opens and index-damage fallbacks, which decoded
    /// the whole payload up front).
    pub fn is_indexed(&self) -> bool {
        self.cached.is_none()
    }

    /// Why the on-disk index was discarded, when it was.
    pub fn fallback(&self) -> Option<&TraceError> {
        self.fallback.as_ref()
    }

    /// Total event count across all segments.
    pub fn event_count(&self) -> u64 {
        self.segments.iter().map(|s| s.events).sum()
    }

    /// Decodes the events of segment `i` only.
    pub fn decode_segment(&self, i: usize) -> Result<Vec<TraceEvent>, TraceError> {
        let seg = self.segments.get(i).ok_or(TraceError::CorruptIndex {
            offset: 0,
            what: "segment index out of range",
        })?;
        if let Some(events) = &self.cached {
            let start = self.event_starts[i] as usize;
            return Ok(events[start..start + seg.events as usize].to_vec());
        }
        let start = seg.offset as usize;
        let bytes = &self.payload[start..start + seg.len as usize];
        let mut r = Reader::new(bytes);
        let mut prev_ps = seg.base_ps;
        let mut events = Vec::with_capacity(seg.events as usize);
        for index in 0..seg.events {
            r.enter_event(self.event_starts[i] + index);
            events.push(format::decode_event(&mut r, &mut prev_ps)?);
        }
        if r.remaining() != 0 {
            return Err(TraceError::CorruptIndex {
                offset: start + r.pos(),
                what: "segment bytes extend past its event count",
            });
        }
        Ok(events)
    }

    /// Decodes every segment serially and reassembles the whole trace —
    /// equal to [`Trace::from_bytes`] on the payload.
    pub fn decode_all(&self) -> Result<Trace, TraceError> {
        self.decode_parallel(1)
    }

    /// Decodes all segments concurrently on `workers` threads (`0` =
    /// one per available core) and reassembles the whole trace in
    /// stream order. Equal to [`Trace::from_bytes`] on the payload;
    /// the first (lowest-segment) error wins, deterministically.
    pub fn decode_parallel(&self, workers: usize) -> Result<Trace, TraceError> {
        if let Some(events) = &self.cached {
            return Ok(Trace {
                header: self.header.clone(),
                events: events.clone(),
            });
        }
        let decoded = self.decode_segments_parallel(workers)?;
        let mut events = Vec::with_capacity(self.event_count() as usize);
        for segment in decoded {
            events.extend(segment);
        }
        Ok(Trace {
            header: self.header.clone(),
            events,
        })
    }

    /// Decodes every segment on a scoped worker pool, preserving
    /// segment order in the result.
    fn decode_segments_parallel(&self, workers: usize) -> Result<Vec<Vec<TraceEvent>>, TraceError> {
        let count = self.segments.len();
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            workers
        }
        .min(count.max(1));
        if workers <= 1 || count <= 1 {
            return (0..count).map(|i| self.decode_segment(i)).collect();
        }
        // The fleet worker-pool shape: scoped threads claim segment
        // indices from a shared counter and park results in per-slot
        // mailboxes, so output order is independent of scheduling.
        type Slot = Mutex<Option<Result<Vec<TraceEvent>, TraceError>>>;
        let next = AtomicUsize::new(0);
        let slots: Vec<Slot> = (0..count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = self.decode_segment(i);
                    *slots[i].lock().expect("segment slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("segment slot poisoned")
                    .expect("every segment index was claimed")
            })
            .collect()
    }
}

/// Cumulative event-start indices for a segment list.
fn cumulative_starts(segments: &[SegmentMeta]) -> Vec<u64> {
    let mut starts = Vec::with_capacity(segments.len());
    let mut total = 0u64;
    for seg in segments {
        starts.push(total);
        total += seg.events;
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::chip::Command;
    use dram_sim::sink::CommandOutcome;
    use dram_sim::time::Time;

    fn marked_trace() -> Trace {
        let mut events = vec![TraceEvent::SetTemperature { celsius: 45.0 }];
        for (shard, bank) in [(0u32, 0u32), (1, 1), (2, 3)] {
            events.push(TraceEvent::Marker {
                label: format!("shard:bank={shard}"),
            });
            for i in 0..4u64 {
                events.push(TraceEvent::Command {
                    cmd: Command::Activate {
                        bank,
                        row: i as u32,
                    },
                    at: Time::from_ns(10 + i * 5),
                    outcome: CommandOutcome::Accepted,
                });
                events.push(TraceEvent::Command {
                    cmd: Command::Precharge { bank },
                    at: Time::from_ns(12 + i * 5),
                    outcome: CommandOutcome::Accepted,
                });
            }
        }
        Trace {
            header: TraceHeader {
                profile_label: "test".into(),
                seed: 7,
                geometry_hash: 9,
                dossier_digest: None,
                dropped: 0,
                meta: vec![],
            },
            events,
        }
    }

    #[test]
    fn v2_payload_is_byte_identical_to_v1() {
        let trace = marked_trace();
        let v1 = trace.to_bytes();
        let v2 = trace.to_bytes_indexed();
        assert!(v2.len() > v1.len());
        assert_eq!(&v2[..v1.len()], &v1[..]);
        assert_eq!(&v2[v2.len() - 8..], &TRAILER_MAGIC);
        match split_container(&v2) {
            Container::V2 { payload, index } => {
                assert_eq!(payload, &v1[..]);
                assert_eq!(index.segments.len(), 4);
                assert_eq!(index.segments[0].label, "");
                assert_eq!(index.segments[1].label, "shard:bank=0");
                index
                    .validate(v1.len() as u64, trace.events.len() as u64)
                    .expect("valid");
                index.verify_payload(payload).expect("digests match");
            }
            other => panic!("expected V2, got {other:?}"),
        }
        // A v1 stream classifies as V1.
        assert!(matches!(split_container(&v1), Container::V1(_)));
    }

    #[test]
    fn indexed_open_decodes_segments_independently_and_in_parallel() {
        let trace = marked_trace();
        let v2 = trace.to_bytes_indexed();
        let opened = IndexedTrace::from_bytes(&v2).expect("opens");
        assert!(opened.is_indexed());
        assert!(opened.fallback().is_none());
        assert_eq!(opened.header(), &trace.header);
        assert_eq!(opened.event_count(), trace.events.len() as u64);
        // Segment 2 alone equals the split_at_markers slice.
        let split = trace.split_at_markers("shard:bank=");
        assert_eq!(opened.decode_segment(1).expect("decodes"), split[1].events);
        // Parallel and serial reassembly both equal the whole decode.
        for workers in [0, 1, 2, 7] {
            let got = opened.decode_parallel(workers).expect("decodes");
            assert_eq!(got, Trace::from_bytes(&trace.to_bytes()).expect("v1"));
        }
        assert_eq!(
            Trace::decode_indexed_parallel(&v2, 2).expect("decodes"),
            trace
        );
        assert_eq!(decode_container(&v2).expect("decodes"), trace);
    }

    #[test]
    fn v1_open_synthesizes_equivalent_segments() {
        let trace = marked_trace();
        let v1 = trace.to_bytes();
        let opened = IndexedTrace::from_bytes(&v1).expect("opens");
        assert!(!opened.is_indexed());
        assert!(opened.fallback().is_none());
        let v2 = trace.to_bytes_indexed();
        let indexed = IndexedTrace::from_bytes(&v2).expect("opens");
        // Synthesized metadata matches the real index everywhere except
        // the byte-range fields, which do not exist without an index.
        assert_eq!(opened.segments().len(), indexed.segments().len());
        for (synth, real) in opened.segments().iter().zip(indexed.segments()) {
            assert_eq!(synth.label, real.label);
            assert_eq!(synth.events, real.events);
            assert_eq!(synth.banks, real.banks);
            assert_eq!(synth.ops, real.ops);
            assert_eq!(synth.min_ps, real.min_ps);
            assert_eq!(synth.max_ps, real.max_ps);
            assert_eq!((synth.offset, synth.len, synth.digest), (0, 0, 0));
        }
        for i in 0..opened.segments().len() {
            assert_eq!(
                opened.decode_segment(i).expect("decodes"),
                indexed.decode_segment(i).expect("decodes")
            );
        }
    }

    #[test]
    fn damaged_index_falls_back_to_intact_payload() {
        let trace = marked_trace();
        let v2 = trace.to_bytes_indexed();
        let v1_len = trace.to_bytes().len();
        // Flip a byte inside the index section: digest check trips,
        // payload is intact, the open falls back and still decodes.
        let mut damaged = v2.clone();
        damaged[v1_len + 2] ^= 0xff;
        let opened = IndexedTrace::from_bytes(&damaged).expect("falls back");
        assert!(!opened.is_indexed());
        assert!(matches!(
            opened.fallback(),
            Some(TraceError::CorruptIndex { .. })
        ));
        assert_eq!(opened.decode_all().expect("decodes"), trace);
        assert_eq!(decode_container(&damaged).expect("decodes"), trace);
        // Flip a payload byte under an intact index: the segment digest
        // catches it.
        let mut corrupt_payload = v2.clone();
        corrupt_payload[v1_len - 3] ^= 0xff;
        match IndexedTrace::from_bytes(&corrupt_payload) {
            Err(
                TraceError::Corrupt { .. }
                | TraceError::CorruptIndex { .. }
                | TraceError::TruncatedEvents { .. },
            ) => {}
            other => panic!("payload corruption must error, got {other:?}"),
        }
        // Destroy the length field so the payload cannot be located.
        let mut unlocatable = v2.clone();
        let len_at = v2.len() - TRAILER_LEN;
        unlocatable[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            IndexedTrace::from_bytes(&unlocatable),
            Err(TraceError::CorruptIndex {
                what: "index length exceeds file",
                ..
            })
        ));
    }

    #[test]
    fn empty_trace_round_trips_through_the_container() {
        let trace = Trace {
            header: marked_trace().header,
            events: vec![],
        };
        let v2 = trace.to_bytes_indexed();
        let opened = IndexedTrace::from_bytes(&v2).expect("opens");
        assert!(opened.is_indexed());
        assert_eq!(opened.segments().len(), 0);
        assert_eq!(opened.decode_parallel(4).expect("decodes"), trace);
    }
}
