//! The versioned binary trace format, its encoder/decoder, and the
//! human-readable dump.
//!
//! # Layout (version 1, all multi-byte scalars little-endian)
//!
//! ```text
//! magic            4 bytes   b"DRTR"
//! version          u16       1
//! flags            u16       bit 0: dossier digest present; others must be 0
//! seed             u64       chip RNG seed the run was recorded with
//! geometry hash    u64       fnv1a-64 over the profile geometry (see
//!                            [`geometry_hash`](crate::geometry_hash))
//! profile label    varint length + UTF-8 bytes
//! dossier digest   u64       only if flags bit 0 is set
//! dropped          varint    events the recorder's ring buffer discarded
//! meta count       varint    then per pair: key string, value string
//! event count      varint
//! events           ...       see below
//! ```
//!
//! Each event starts with a one-byte opcode. Timed events (opcodes 1–8)
//! follow it with the timestamp as a zigzag varint delta in picoseconds
//! from the previous timed event, then their payload, then the outcome.
//! `TEMP` (9) carries the `f64` bits as 8 raw bytes; `MARK` (10) carries a
//! length-prefixed UTF-8 label. An outcome is one tag byte — `0` accepted,
//! `1` data (+ varint), `2` rejected (+ error code byte and its varint
//! payloads).
//!
//! Decoding is total: any truncation or structural damage yields a
//! [`TraceError`], never a panic, and unknown opcodes/flags/tags are
//! rejected rather than skipped so a trace cannot silently lose events.

use crate::error::TraceError;
use crate::event::TraceEvent;
use crate::varint::{self, VarintFault};
use dram_sim::chip::{Command, CommandError};
use dram_sim::sink::CommandOutcome;
use dram_sim::time::Time;
use std::fmt::Write as _;

/// The four magic bytes every trace stream starts with.
pub const MAGIC: [u8; 4] = *b"DRTR";

/// The trace format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Header flag bit: the header carries a dossier digest.
const FLAG_DOSSIER_DIGEST: u16 = 1 << 0;

/// Placeholder message for `CommandError::Internal` payloads, whose
/// `&'static str` cannot survive deserialization. The original message is
/// preserved in the byte stream (and shown by `dump`) but a decoded trace
/// carries this fixed marker instead; internal errors indicate simulator
/// bugs and never occur in a healthy recording.
pub const INTERNAL_ERROR_PLACEHOLDER: &str = "(recorded internal error)";

/// Everything known about a recorded run besides its events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Label of the chip profile the run used, e.g. `"Mfr. A x4 2016"`.
    pub profile_label: String,
    /// Chip RNG seed of the run.
    pub seed: u64,
    /// [`geometry_hash`](crate::geometry_hash) of the profile at record
    /// time; replay refuses a trace whose geometry no longer matches.
    pub geometry_hash: u64,
    /// FNV-1a 64 digest of the run's rendered dossier, when the recording
    /// wrapped a full characterization.
    pub dossier_digest: Option<u64>,
    /// Events the recorder's ring buffer discarded (oldest-first). A
    /// value above zero marks the trace as partial.
    pub dropped: u64,
    /// Free-form key/value pairs (e.g. the characterization options used).
    pub meta: Vec<(String, String)>,
}

impl TraceHeader {
    /// Looks up a meta value by key (first match).
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A decoded (or freshly recorded) command trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Run metadata.
    pub header: TraceHeader,
    /// The events, in issue order, with absolute timestamps.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Appends the header section — everything up to and including the
    /// event count varint — exactly as [`to_bytes`](Self::to_bytes)
    /// writes it. Shared with the indexed container writer in
    /// [`lake`](crate::lake) so a v2 payload is byte-identical to v1.
    pub(crate) fn encode_header_and_count(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let mut flags = 0u16;
        if self.header.dossier_digest.is_some() {
            flags |= FLAG_DOSSIER_DIGEST;
        }
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&self.header.seed.to_le_bytes());
        out.extend_from_slice(&self.header.geometry_hash.to_le_bytes());
        put_str(out, &self.header.profile_label);
        if let Some(digest) = self.header.dossier_digest {
            out.extend_from_slice(&digest.to_le_bytes());
        }
        varint::encode_u64(out, self.header.dropped);
        varint::encode_u64(out, self.header.meta.len() as u64);
        for (key, value) in &self.header.meta {
            put_str(out, key);
            put_str(out, value);
        }
        varint::encode_u64(out, self.events.len() as u64);
    }

    /// Serializes the trace into the version-1 binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.events.len() * 4);
        self.encode_header_and_count(&mut out);
        let mut prev_ps = 0u64;
        for ev in &self.events {
            encode_event(&mut out, ev, &mut prev_ps);
        }
        out
    }

    /// Decodes the header section, leaving the reader positioned at the
    /// first event, and returns the header with the declared event count.
    pub(crate) fn decode_header_and_count(
        r: &mut Reader<'_>,
    ) -> Result<(TraceHeader, u64), TraceError> {
        let magic = r.take(4)?;
        if magic != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(magic);
            return Err(TraceError::BadMagic { found });
        }
        let version = r.u16_le()?;
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let flags = r.u16_le()?;
        if flags & !FLAG_DOSSIER_DIGEST != 0 {
            return Err(r.corrupt("unknown header flag bits"));
        }
        let seed = r.u64_le()?;
        let geometry_hash = r.u64_le()?;
        let profile_label = r.string()?;
        let dossier_digest = if flags & FLAG_DOSSIER_DIGEST != 0 {
            Some(r.u64_le()?)
        } else {
            None
        };
        let dropped = r.varint()?;
        let meta_count = r.varint()?;
        // Each meta pair needs at least two length bytes; an impossible
        // count is corruption, not an allocation request.
        if meta_count > r.remaining() as u64 {
            return Err(r.corrupt("meta count exceeds remaining input"));
        }
        let mut meta = Vec::with_capacity(meta_count as usize);
        for _ in 0..meta_count {
            let key = r.string()?;
            let value = r.string()?;
            meta.push((key, value));
        }
        let event_count = r.varint()?;
        if event_count > r.remaining() as u64 {
            return Err(r.corrupt("event count exceeds remaining input"));
        }
        Ok((
            TraceHeader {
                profile_label,
                seed,
                geometry_hash,
                dossier_digest,
                dropped,
                meta,
            },
            event_count,
        ))
    }

    /// Decodes a version-1 binary trace. Never panics: malformed input of
    /// any kind yields a [`TraceError`].
    pub fn from_bytes(buf: &[u8]) -> Result<Trace, TraceError> {
        let mut r = Reader::new(buf);
        let (header, event_count) = Self::decode_header_and_count(&mut r)?;
        let mut events = Vec::with_capacity(event_count as usize);
        let mut prev_ps = 0u64;
        for index in 0..event_count {
            r.enter_event(index);
            events.push(decode_event(&mut r, &mut prev_ps)?);
        }
        if r.remaining() != 0 {
            return Err(r.corrupt("trailing bytes after last event"));
        }
        Ok(Trace { header, events })
    }

    /// Concatenates per-shard trace segments into one stream, in the
    /// order given.
    ///
    /// Every segment must agree on profile label, seed, and geometry
    /// hash — they were recorded against clones of one device, and a
    /// mismatch means the caller mixed runs. `dropped` counts sum; the
    /// result carries no dossier digest and no meta (run-level identity
    /// belongs to the caller, who knows what the merged stream means).
    ///
    /// Concatenation is deterministic: the merged event stream is
    /// exactly the segments' streams back to back, and the delta
    /// timestamp encoding is signed, so a later segment restarting its
    /// clock at zero round-trips through bytes unchanged.
    ///
    /// # Errors
    ///
    /// [`TraceError::SegmentMismatch`] on an empty segment list or
    /// disagreeing identity fields.
    pub fn concat(segments: &[Trace]) -> Result<Trace, TraceError> {
        let first = segments.first().ok_or(TraceError::SegmentMismatch {
            what: "no segments",
        })?;
        for s in segments {
            if s.header.profile_label != first.header.profile_label {
                return Err(TraceError::SegmentMismatch {
                    what: "profile label",
                });
            }
            if s.header.seed != first.header.seed {
                return Err(TraceError::SegmentMismatch { what: "seed" });
            }
            if s.header.geometry_hash != first.header.geometry_hash {
                return Err(TraceError::SegmentMismatch {
                    what: "geometry hash",
                });
            }
        }
        Ok(Trace {
            header: TraceHeader {
                profile_label: first.header.profile_label.clone(),
                seed: first.header.seed,
                geometry_hash: first.header.geometry_hash,
                dossier_digest: None,
                dropped: segments.iter().map(|s| s.header.dropped).sum(),
                meta: Vec::new(),
            },
            events: segments
                .iter()
                .flat_map(|s| s.events.iter().cloned())
                .collect(),
        })
    }

    /// Splits the event stream into segments at every marker whose label
    /// starts with `prefix` (each matching marker opens a new segment
    /// and stays as its first event). Events before the first matching
    /// marker, if any, form a leading segment of their own; a trace with
    /// no matching markers comes back as one segment.
    ///
    /// Each segment clones this trace's header minus the dossier digest
    /// (a digest describes the whole run, not a slice of it), so a
    /// segment is itself a replayable trace. The exact inverse of
    /// [`concat`](Self::concat) for streams whose shards each open with
    /// such a marker.
    pub fn split_at_markers(&self, prefix: &str) -> Vec<Trace> {
        let segment_header = TraceHeader {
            dossier_digest: None,
            ..self.header.clone()
        };
        let mut segments: Vec<Trace> = Vec::new();
        for ev in &self.events {
            let opens = matches!(ev, TraceEvent::Marker { label } if label.starts_with(prefix));
            if opens || segments.is_empty() {
                segments.push(Trace {
                    header: segment_header.clone(),
                    events: Vec::new(),
                });
            }
            segments
                .last_mut()
                .expect("a segment was just ensured")
                .events
                .push(ev.clone());
        }
        segments
    }

    /// Renders the trace as human-readable text: a commented header
    /// followed by one numbered line per event.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# dram-trace v{VERSION}");
        let _ = writeln!(out, "# profile: {}", self.header.profile_label);
        let _ = writeln!(out, "# seed: {}", self.header.seed);
        let _ = writeln!(out, "# geometry: {:#018x}", self.header.geometry_hash);
        match self.header.dossier_digest {
            Some(d) => {
                let _ = writeln!(out, "# dossier digest: {d:#018x}");
            }
            None => {
                let _ = writeln!(out, "# dossier digest: none");
            }
        }
        let _ = writeln!(out, "# dropped: {}", self.header.dropped);
        for (key, value) in &self.header.meta {
            let _ = writeln!(out, "# meta {key} = {value}");
        }
        let _ = writeln!(out, "# events: {}", self.events.len());
        for (i, ev) in self.events.iter().enumerate() {
            let _ = writeln!(out, "{i:>8} {ev}");
        }
        out
    }
}

/// Appends a length-prefixed UTF-8 string.
fn put_str(out: &mut Vec<u8>, s: &str) {
    varint::encode_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// Event opcodes. 1–6 mirror the `Command` variants; 7–8 are the
// loop-accelerated entry points; 9–10 are untimed annotations.
const OP_ACT: u8 = 1;
const OP_PRE: u8 = 2;
const OP_RD: u8 = 3;
const OP_WR: u8 = 4;
const OP_REF: u8 = 5;
const OP_RFM: u8 = 6;
const OP_BURST: u8 = 7;
const OP_REFW: u8 = 8;
const OP_TEMP: u8 = 9;
const OP_MARK: u8 = 10;

// Outcome tags.
const OUT_ACCEPTED: u8 = 0;
const OUT_DATA: u8 = 1;
const OUT_REJECTED: u8 = 2;

pub(crate) fn encode_event(out: &mut Vec<u8>, ev: &TraceEvent, prev_ps: &mut u64) {
    // Timestamps round-trip exactly for every u64 because the delta is
    // computed and re-applied with wrapping arithmetic.
    let mut put_delta = |out: &mut Vec<u8>, at: Time| {
        varint::encode_i64(out, at.as_ps().wrapping_sub(*prev_ps) as i64);
        *prev_ps = at.as_ps();
    };
    match ev {
        TraceEvent::Command { cmd, at, outcome } => {
            match *cmd {
                Command::Activate { bank, row } => {
                    out.push(OP_ACT);
                    put_delta(out, *at);
                    varint::encode_u64(out, bank as u64);
                    varint::encode_u64(out, row as u64);
                }
                Command::Precharge { bank } => {
                    out.push(OP_PRE);
                    put_delta(out, *at);
                    varint::encode_u64(out, bank as u64);
                }
                Command::Read { bank, col } => {
                    out.push(OP_RD);
                    put_delta(out, *at);
                    varint::encode_u64(out, bank as u64);
                    varint::encode_u64(out, col as u64);
                }
                Command::Write { bank, col, data } => {
                    out.push(OP_WR);
                    put_delta(out, *at);
                    varint::encode_u64(out, bank as u64);
                    varint::encode_u64(out, col as u64);
                    varint::encode_u64(out, data);
                }
                Command::Refresh => {
                    out.push(OP_REF);
                    put_delta(out, *at);
                }
                Command::Rfm { bank } => {
                    out.push(OP_RFM);
                    put_delta(out, *at);
                    varint::encode_u64(out, bank as u64);
                }
            }
            encode_outcome(out, outcome);
        }
        TraceEvent::Burst {
            bank,
            row,
            count,
            each_on,
            at,
            outcome,
        } => {
            out.push(OP_BURST);
            put_delta(out, *at);
            varint::encode_u64(out, *bank as u64);
            varint::encode_u64(out, *row as u64);
            varint::encode_u64(out, *count);
            varint::encode_u64(out, each_on.as_ps());
            encode_outcome(out, outcome);
        }
        TraceEvent::RefreshWindow { at, outcome } => {
            out.push(OP_REFW);
            put_delta(out, *at);
            encode_outcome(out, outcome);
        }
        TraceEvent::SetTemperature { celsius } => {
            out.push(OP_TEMP);
            out.extend_from_slice(&celsius.to_bits().to_le_bytes());
        }
        TraceEvent::Marker { label } => {
            out.push(OP_MARK);
            put_str(out, label);
        }
    }
}

fn encode_outcome(out: &mut Vec<u8>, outcome: &CommandOutcome) {
    match outcome {
        CommandOutcome::Accepted => out.push(OUT_ACCEPTED),
        CommandOutcome::Data(d) => {
            out.push(OUT_DATA);
            varint::encode_u64(out, *d);
        }
        CommandOutcome::Rejected(e) => {
            out.push(OUT_REJECTED);
            encode_error(out, e);
        }
    }
}

// Error codes for `CommandError` variants; payload varints follow the
// code for the range variants, a length-prefixed string for `Internal`.
const ERR_BANK: u8 = 0;
const ERR_ROW: u8 = 1;
const ERR_COL: u8 = 2;
const ERR_NO_OPEN_ROW: u8 = 3;
const ERR_ROW_ALREADY_OPEN: u8 = 4;
const ERR_TRCD: u8 = 5;
const ERR_REFRESH_WHILE_OPEN: u8 = 6;
const ERR_TIME_REVERSED: u8 = 7;
const ERR_INTERNAL: u8 = 8;

fn encode_error(out: &mut Vec<u8>, e: &CommandError) {
    match *e {
        CommandError::BankOutOfRange { bank, banks } => {
            out.push(ERR_BANK);
            varint::encode_u64(out, bank as u64);
            varint::encode_u64(out, banks as u64);
        }
        CommandError::RowOutOfRange { row, rows } => {
            out.push(ERR_ROW);
            varint::encode_u64(out, row as u64);
            varint::encode_u64(out, rows as u64);
        }
        CommandError::ColOutOfRange { col, cols } => {
            out.push(ERR_COL);
            varint::encode_u64(out, col as u64);
            varint::encode_u64(out, cols as u64);
        }
        CommandError::NoOpenRow => out.push(ERR_NO_OPEN_ROW),
        CommandError::RowAlreadyOpen => out.push(ERR_ROW_ALREADY_OPEN),
        CommandError::TrcdViolation => out.push(ERR_TRCD),
        CommandError::RefreshWhileOpen => out.push(ERR_REFRESH_WHILE_OPEN),
        CommandError::TimeReversed => out.push(ERR_TIME_REVERSED),
        CommandError::Internal(what) => {
            out.push(ERR_INTERNAL);
            put_str(out, what);
        }
    }
}

pub(crate) fn decode_event(
    r: &mut Reader<'_>,
    prev_ps: &mut u64,
) -> Result<TraceEvent, TraceError> {
    let opcode = r.u8()?;
    let mut delta = |r: &mut Reader<'_>| -> Result<Time, TraceError> {
        let dt = r.svarint()?;
        *prev_ps = prev_ps.wrapping_add(dt as u64);
        Ok(Time::from_ps(*prev_ps))
    };
    let ev = match opcode {
        OP_ACT => {
            let at = delta(r)?;
            let bank = r.varint_u32()?;
            let row = r.varint_u32()?;
            let outcome = decode_outcome(r)?;
            TraceEvent::Command {
                cmd: Command::Activate { bank, row },
                at,
                outcome,
            }
        }
        OP_PRE => {
            let at = delta(r)?;
            let bank = r.varint_u32()?;
            let outcome = decode_outcome(r)?;
            TraceEvent::Command {
                cmd: Command::Precharge { bank },
                at,
                outcome,
            }
        }
        OP_RD => {
            let at = delta(r)?;
            let bank = r.varint_u32()?;
            let col = r.varint_u32()?;
            let outcome = decode_outcome(r)?;
            TraceEvent::Command {
                cmd: Command::Read { bank, col },
                at,
                outcome,
            }
        }
        OP_WR => {
            let at = delta(r)?;
            let bank = r.varint_u32()?;
            let col = r.varint_u32()?;
            let data = r.varint()?;
            let outcome = decode_outcome(r)?;
            TraceEvent::Command {
                cmd: Command::Write { bank, col, data },
                at,
                outcome,
            }
        }
        OP_REF => {
            let at = delta(r)?;
            let outcome = decode_outcome(r)?;
            TraceEvent::Command {
                cmd: Command::Refresh,
                at,
                outcome,
            }
        }
        OP_RFM => {
            let at = delta(r)?;
            let bank = r.varint_u32()?;
            let outcome = decode_outcome(r)?;
            TraceEvent::Command {
                cmd: Command::Rfm { bank },
                at,
                outcome,
            }
        }
        OP_BURST => {
            let at = delta(r)?;
            let bank = r.varint_u32()?;
            let row = r.varint_u32()?;
            let count = r.varint()?;
            let each_on = Time::from_ps(r.varint()?);
            let outcome = decode_outcome(r)?;
            TraceEvent::Burst {
                bank,
                row,
                count,
                each_on,
                at,
                outcome,
            }
        }
        OP_REFW => {
            let at = delta(r)?;
            let outcome = decode_outcome(r)?;
            TraceEvent::RefreshWindow { at, outcome }
        }
        OP_TEMP => {
            let bytes = r.take(8)?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(bytes);
            TraceEvent::SetTemperature {
                celsius: f64::from_bits(u64::from_le_bytes(raw)),
            }
        }
        OP_MARK => {
            let label = r.string()?;
            TraceEvent::Marker { label }
        }
        _ => return Err(r.corrupt("unknown event opcode")),
    };
    Ok(ev)
}

fn decode_outcome(r: &mut Reader<'_>) -> Result<CommandOutcome, TraceError> {
    match r.u8()? {
        OUT_ACCEPTED => Ok(CommandOutcome::Accepted),
        OUT_DATA => Ok(CommandOutcome::Data(r.varint()?)),
        OUT_REJECTED => Ok(CommandOutcome::Rejected(decode_error(r)?)),
        _ => Err(r.corrupt("unknown outcome tag")),
    }
}

fn decode_error(r: &mut Reader<'_>) -> Result<CommandError, TraceError> {
    let code = r.u8()?;
    Ok(match code {
        ERR_BANK => CommandError::BankOutOfRange {
            bank: r.varint_u32()?,
            banks: r.varint_u32()?,
        },
        ERR_ROW => CommandError::RowOutOfRange {
            row: r.varint_u32()?,
            rows: r.varint_u32()?,
        },
        ERR_COL => CommandError::ColOutOfRange {
            col: r.varint_u32()?,
            cols: r.varint_u32()?,
        },
        ERR_NO_OPEN_ROW => CommandError::NoOpenRow,
        ERR_ROW_ALREADY_OPEN => CommandError::RowAlreadyOpen,
        ERR_TRCD => CommandError::TrcdViolation,
        ERR_REFRESH_WHILE_OPEN => CommandError::RefreshWhileOpen,
        ERR_TIME_REVERSED => CommandError::TimeReversed,
        ERR_INTERNAL => {
            // `Internal` holds a `&'static str`; the recorded message is
            // validated and skipped, the decoded value carries a fixed
            // placeholder (see `INTERNAL_ERROR_PLACEHOLDER`).
            let _ = r.string()?;
            CommandError::Internal(INTERNAL_ERROR_PLACEHOLDER)
        }
        _ => return Err(r.corrupt("unknown command error code")),
    })
}

/// Bounds-checked cursor over a trace byte stream that knows which
/// section it is in, so truncation errors carry the right context.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    event: Option<u64>,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            event: None,
        }
    }

    pub(crate) fn enter_event(&mut self, index: u64) {
        self.event = Some(index);
    }

    /// Current byte position within the buffer.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn truncated(&self) -> TraceError {
        match self.event {
            None => TraceError::TruncatedHeader { offset: self.pos },
            Some(index) => TraceError::TruncatedEvents {
                offset: self.pos,
                index,
            },
        }
    }

    pub(crate) fn corrupt(&self, what: &'static str) -> TraceError {
        TraceError::Corrupt {
            offset: self.pos,
            what,
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| self.corrupt("length overflow"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16_le(&mut self) -> Result<u16, TraceError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u64_le(&mut self) -> Result<u64, TraceError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    pub(crate) fn varint(&mut self) -> Result<u64, TraceError> {
        varint::decode_u64(self.buf, &mut self.pos).map_err(|fault| match fault {
            VarintFault::Truncated => self.truncated(),
            VarintFault::Overflow => self.corrupt("varint overflows u64"),
        })
    }

    pub(crate) fn svarint(&mut self) -> Result<i64, TraceError> {
        self.varint().map(varint::unzigzag)
    }

    pub(crate) fn varint_u32(&mut self) -> Result<u32, TraceError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| self.corrupt("varint exceeds u32 field"))
    }

    pub(crate) fn string(&mut self) -> Result<String, TraceError> {
        let len = self.varint()?;
        if len > self.remaining() as u64 {
            return Err(self.truncated());
        }
        let bytes = self.take(len as usize)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| TraceError::Corrupt {
                offset: self.pos,
                what: "invalid UTF-8 in string",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            header: TraceHeader {
                profile_label: "Mfr. B x4 0".into(),
                seed: 0x1234_5678_9abc_def0,
                geometry_hash: 0xfeed_face_cafe_beef,
                dossier_digest: Some(42),
                dropped: 0,
                meta: vec![("scan_rows".into(), "129".into())],
            },
            events: vec![
                TraceEvent::Marker {
                    label: "phase:structure".into(),
                },
                TraceEvent::Command {
                    cmd: Command::Activate { bank: 0, row: 21 },
                    at: Time::from_ns(10),
                    outcome: CommandOutcome::Accepted,
                },
                TraceEvent::Command {
                    cmd: Command::Read { bank: 0, col: 3 },
                    at: Time::from_ns(25),
                    outcome: CommandOutcome::Data(u64::MAX),
                },
                TraceEvent::Command {
                    cmd: Command::Write {
                        bank: 0,
                        col: 3,
                        data: 0xdead,
                    },
                    at: Time::from_ns(30),
                    outcome: CommandOutcome::Rejected(CommandError::TrcdViolation),
                },
                TraceEvent::Command {
                    cmd: Command::Rfm { bank: 1 },
                    at: Time::from_ns(31),
                    outcome: CommandOutcome::Rejected(CommandError::BankOutOfRange {
                        bank: 9,
                        banks: 2,
                    }),
                },
                TraceEvent::SetTemperature { celsius: 85.5 },
                TraceEvent::Burst {
                    bank: 1,
                    row: 7,
                    count: 150_000,
                    each_on: Time::from_ns(36),
                    at: Time::from_ns(40),
                    outcome: CommandOutcome::Accepted,
                },
                TraceEvent::RefreshWindow {
                    at: Time::from_ms(70),
                    outcome: CommandOutcome::Accepted,
                },
                TraceEvent::Command {
                    cmd: Command::Refresh,
                    at: Time::from_ms(140),
                    outcome: CommandOutcome::Accepted,
                },
                TraceEvent::Command {
                    cmd: Command::Precharge { bank: 0 },
                    at: Time::from_ms(141),
                    outcome: CommandOutcome::Rejected(CommandError::NoOpenRow),
                },
            ],
        }
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let trace = sample_trace();
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("round trip decodes");
        assert_eq!(back, trace);
    }

    /// A shard-style segment: opens with a `shard:bank=` marker, clock
    /// starting over from near zero like a fresh per-bank testbed.
    fn shard_segment(bank: u32) -> Trace {
        let mut t = sample_trace();
        t.header.dossier_digest = None;
        t.header.meta.clear();
        let mut events = vec![TraceEvent::Marker {
            label: format!("shard:bank={bank}"),
        }];
        events.extend(t.events.iter().cloned());
        t.events = events;
        t
    }

    #[test]
    fn concat_then_split_round_trips_segments() {
        let segments = [shard_segment(0), shard_segment(1), shard_segment(2)];
        let merged = Trace::concat(&segments).expect("one run");
        assert_eq!(
            merged.events.len(),
            segments.iter().map(|s| s.events.len()).sum::<usize>()
        );
        assert_eq!(merged.header.dossier_digest, None);
        // The merged stream survives the binary format even though each
        // segment's clock restarts (negative inter-segment deltas).
        let back = Trace::from_bytes(&merged.to_bytes()).expect("decodes");
        assert_eq!(back, merged);
        // And splits back into exactly the original segment streams.
        let split = back.split_at_markers("shard:bank=");
        assert_eq!(split.len(), segments.len());
        for (got, want) in split.iter().zip(&segments) {
            assert_eq!(got.events, want.events);
        }
    }

    #[test]
    fn split_keeps_a_leading_unmarked_segment_and_whole_traces() {
        let trace = sample_trace();
        // No matching markers: one segment, identical events.
        let whole = trace.split_at_markers("shard:bank=");
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].events, trace.events);
        assert_eq!(whole[0].header.dossier_digest, None);
        // A preamble before the first shard marker stays a segment.
        let mut with_preamble = trace.events.clone();
        with_preamble.push(TraceEvent::Marker {
            label: "shard:bank=5".into(),
        });
        with_preamble.push(TraceEvent::SetTemperature { celsius: 40.0 });
        let t = Trace {
            header: trace.header.clone(),
            events: with_preamble,
        };
        let parts = t.split_at_markers("shard:bank=");
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].events, trace.events);
        assert_eq!(parts[1].events.len(), 2);
        assert_eq!(Trace::concat(&parts).expect("same run").events, t.events);
    }

    #[test]
    fn concat_rejects_mixed_runs_and_empty_input() {
        assert_eq!(
            Trace::concat(&[]),
            Err(TraceError::SegmentMismatch {
                what: "no segments"
            })
        );
        let a = shard_segment(0);
        for (mutate, what) in [
            (
                Box::new(|t: &mut Trace| t.header.profile_label.push('X'))
                    as Box<dyn Fn(&mut Trace)>,
                "profile label",
            ),
            (Box::new(|t: &mut Trace| t.header.seed ^= 1), "seed"),
            (
                Box::new(|t: &mut Trace| t.header.geometry_hash ^= 1),
                "geometry hash",
            ),
        ] {
            let mut b = shard_segment(1);
            mutate(&mut b);
            assert_eq!(
                Trace::concat(&[a.clone(), b]),
                Err(TraceError::SegmentMismatch { what }),
                "{what}"
            );
        }
        // Dropped counts sum across segments.
        let mut partial = shard_segment(1);
        partial.header.dropped = 3;
        let merged = Trace::concat(&[a, partial]).expect("same run");
        assert_eq!(merged.header.dropped, 3);
    }

    #[test]
    fn header_without_digest_round_trips() {
        let mut trace = sample_trace();
        trace.header.dossier_digest = None;
        trace.header.meta.clear();
        let back = Trace::from_bytes(&trace.to_bytes()).expect("decodes");
        assert_eq!(back.header.dossier_digest, None);
        assert_eq!(back, trace);
    }

    #[test]
    fn internal_error_payload_decodes_to_placeholder() {
        let mut trace = sample_trace();
        trace.events = vec![TraceEvent::Command {
            cmd: Command::Refresh,
            at: Time::from_ns(1),
            outcome: CommandOutcome::Rejected(CommandError::Internal("specific message")),
        }];
        let back = Trace::from_bytes(&trace.to_bytes()).expect("decodes");
        match &back.events[0] {
            TraceEvent::Command {
                outcome: CommandOutcome::Rejected(e),
                ..
            } => {
                assert_eq!(*e, CommandError::Internal(INTERNAL_ERROR_PLACEHOLDER));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_reported() {
        let mut bytes = sample_trace().to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::BadMagic {
                found: [b'X', b'R', b'T', b'R']
            })
        );
    }

    #[test]
    fn version_mismatch_is_reported() {
        let mut bytes = sample_trace().to_bytes();
        bytes[4] = 2;
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion {
                found: 2,
                supported: VERSION
            })
        );
    }

    #[test]
    fn truncated_header_is_reported() {
        let bytes = sample_trace().to_bytes();
        assert_eq!(
            Trace::from_bytes(&[]),
            Err(TraceError::TruncatedHeader { offset: 0 })
        );
        assert!(matches!(
            Trace::from_bytes(&bytes[..10]),
            Err(TraceError::TruncatedHeader { .. })
        ));
    }

    #[test]
    fn every_truncation_point_errors_without_panicking() {
        let bytes = sample_trace().to_bytes();
        for len in 0..bytes.len() {
            let err = Trace::from_bytes(&bytes[..len]).expect_err("prefix must not decode");
            assert!(
                matches!(
                    err,
                    TraceError::TruncatedHeader { .. }
                        | TraceError::TruncatedEvents { .. }
                        | TraceError::Corrupt { .. }
                ),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        let bytes = sample_trace().to_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            // Any result is fine as long as it is not a panic; a flipped
            // byte may still decode to a different, valid trace.
            let _ = Trace::from_bytes(&mutated);
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = sample_trace().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::Corrupt {
                what: "trailing bytes after last event",
                ..
            })
        ));
    }

    #[test]
    fn unknown_opcode_and_flag_bits_are_corrupt() {
        let mut trace = sample_trace();
        trace.events.clear();
        let mut bytes = trace.to_bytes();
        // Append one fake event with an unknown opcode.
        let count_pos = bytes.len() - 1;
        bytes[count_pos] = 1;
        bytes.push(200);
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::Corrupt {
                what: "unknown event opcode",
                ..
            })
        ));

        let mut bytes = sample_trace().to_bytes();
        bytes[6] |= 0x80; // set an undefined flag bit
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::Corrupt {
                what: "unknown header flag bits",
                ..
            })
        ));
    }

    #[test]
    fn dump_renders_header_and_events() {
        let text = sample_trace().dump();
        assert!(text.contains("# dram-trace v1"), "{text}");
        assert!(text.contains("# profile: Mfr. B x4 0"));
        assert!(text.contains("# meta scan_rows = 129"));
        assert!(text.contains("ACT bank=0 row=21"));
        assert!(text.contains("BURST bank=1 row=7 x150000"));
        assert_eq!(text.lines().count(), 8 + sample_trace().events.len());
    }

    #[test]
    fn delta_encoding_keeps_steady_streams_compact() {
        let mut events = Vec::new();
        for i in 0..1000u64 {
            events.push(TraceEvent::Command {
                cmd: Command::Refresh,
                at: Time::from_ps(i * 100),
                outcome: CommandOutcome::Accepted,
            });
        }
        let trace = Trace {
            header: TraceHeader {
                profile_label: "x".into(),
                seed: 0,
                geometry_hash: 0,
                dossier_digest: None,
                dropped: 0,
                meta: vec![],
            },
            events,
        };
        let bytes = trace.to_bytes();
        // opcode + 1-byte delta + outcome tag = 3 bytes per event.
        assert!(bytes.len() < 40 + 1000 * 4, "{} bytes", bytes.len());
        assert_eq!(Trace::from_bytes(&bytes).expect("decodes"), trace);
    }
}
