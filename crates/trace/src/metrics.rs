//! Deriving run telemetry from a recorded trace.
//!
//! A [`Trace`] is the complete event stream a live run's sinks saw, so
//! feeding its events back through a [`MetricsSink`] reconstructs the exact
//! registry a live metrics collector would have produced — no
//! re-simulation, no chip, just a linear pass over the events. This is
//! what `characterize stats <trace>` uses, and the invariant
//! (trace-derived metrics == live metrics) is pinned by the golden-trace
//! tests.

use dram_sim::{CommandSink, MetricsSink};
use dram_telemetry::Registry;

use crate::format::Trace;

/// Folds every event of a recorded trace into a fresh metrics registry.
///
/// The result is byte-for-byte the registry a [`MetricsSink`] attached
/// during the original run would have returned, because both consume the
/// identical event stream.
pub fn trace_metrics(trace: &Trace) -> Registry {
    let mut sink = MetricsSink::new();
    for event in &trace.events {
        sink.record(event.to_chip());
    }
    sink.into_registry()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{ChipProfile, Command, CommandOutcome, DramChip, Tee, Time};
    use dram_telemetry::Key;

    use crate::record::SharedRecorder;

    /// Record a short live run with a recorder *and* a metrics sink
    /// teed on the same chip; the trace-derived registry must equal the
    /// live one.
    #[test]
    fn trace_metrics_equal_live_metrics() {
        let profile = ChipProfile::test_small();
        let recorder = SharedRecorder::unbounded();
        let live = dram_sim::SharedMetrics::new();
        let mut chip = DramChip::new(profile.clone(), 7);
        chip.set_sink(Box::new(Tee::new(recorder.sink(), live.clone())));

        let mut t = Time::from_ns(100);
        chip.mark("phase:structure");
        for row in 0..4 {
            chip.issue(Command::Activate { bank: 0, row }, t).unwrap();
            t += chip.timing().trcd;
            chip.issue(Command::Read { bank: 0, col: 0 }, t).unwrap();
            t += chip.timing().tras;
            chip.issue(Command::Precharge { bank: 0 }, t).unwrap();
            t += chip.timing().trp;
        }
        // A rejected command is part of the stream too.
        let _ = chip.issue(Command::Precharge { bank: 0 }, t);

        let trace = recorder.finish(&profile, 7);
        let from_trace = trace_metrics(&trace);
        let from_live = live.take_registry();
        assert_eq!(from_trace.to_json_lines(), from_live.to_json_lines());
        assert_eq!(
            from_trace.counter(&Key::of("commands_total", &[("kind", "act")])),
            4
        );
        assert_eq!(
            from_trace.counter(&Key::of("outcomes_total", &[("outcome", "rejected")])),
            1
        );
    }

    #[test]
    fn event_round_trip_through_to_chip_is_lossless() {
        let ev = crate::event::TraceEvent::Command {
            cmd: Command::Write {
                bank: 1,
                col: 2,
                data: 0xabcd,
            },
            at: Time::from_ns(50),
            outcome: CommandOutcome::Accepted,
        };
        assert_eq!(crate::event::TraceEvent::from_chip(&ev.to_chip()), ev);
        let marker = crate::event::TraceEvent::Marker {
            label: "span:x:enter".into(),
        };
        assert_eq!(
            crate::event::TraceEvent::from_chip(&marker.to_chip()),
            marker
        );
    }
}
