//! Structural comparison of two traces, for the `characterize diff` CLI
//! and golden-trace debugging: *where* did two runs first part ways?

use crate::format::Trace;
use std::fmt;

/// The differences between two traces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceDiff {
    /// Human-readable header field differences, one per line.
    pub header: Vec<String>,
    /// Events in the first trace.
    pub a_events: usize,
    /// Events in the second trace.
    pub b_events: usize,
    /// Index of the first differing event, if the event streams differ.
    pub first_divergence: Option<usize>,
    /// Rendered forms of the events at the divergence (`"<absent>"` when
    /// one trace ended).
    pub divergence_detail: Option<(String, String)>,
}

impl TraceDiff {
    /// Whether the two traces are identical.
    pub fn identical(&self) -> bool {
        self.header.is_empty() && self.first_divergence.is_none()
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.identical() {
            return write!(f, "traces identical ({} events)", self.a_events);
        }
        for line in &self.header {
            writeln!(f, "header: {line}")?;
        }
        if self.a_events != self.b_events {
            writeln!(f, "events: {} vs {}", self.a_events, self.b_events)?;
        }
        match (&self.first_divergence, &self.divergence_detail) {
            (Some(index), Some((a, b))) => {
                writeln!(f, "first divergence at event {index}:")?;
                writeln!(f, "  a: {a}")?;
                write!(f, "  b: {b}")
            }
            _ => write!(f, "event streams identical"),
        }
    }
}

/// Compares two traces field-by-field and event-by-event.
pub fn diff_traces(a: &Trace, b: &Trace) -> TraceDiff {
    let mut diff = TraceDiff {
        a_events: a.events.len(),
        b_events: b.events.len(),
        ..TraceDiff::default()
    };
    let ha = &a.header;
    let hb = &b.header;
    if ha.profile_label != hb.profile_label {
        diff.header.push(format!(
            "profile {:?} vs {:?}",
            ha.profile_label, hb.profile_label
        ));
    }
    if ha.seed != hb.seed {
        diff.header.push(format!("seed {} vs {}", ha.seed, hb.seed));
    }
    if ha.geometry_hash != hb.geometry_hash {
        diff.header.push(format!(
            "geometry {:#018x} vs {:#018x}",
            ha.geometry_hash, hb.geometry_hash
        ));
    }
    if ha.dossier_digest != hb.dossier_digest {
        let show = |d: Option<u64>| match d {
            Some(v) => format!("{v:#018x}"),
            None => "none".to_owned(),
        };
        diff.header.push(format!(
            "dossier digest {} vs {}",
            show(ha.dossier_digest),
            show(hb.dossier_digest)
        ));
    }
    if ha.dropped != hb.dropped {
        diff.header
            .push(format!("dropped {} vs {}", ha.dropped, hb.dropped));
    }
    if ha.meta != hb.meta {
        diff.header
            .push(format!("meta {:?} vs {:?}", ha.meta, hb.meta));
    }

    let common = a.events.len().min(b.events.len());
    for i in 0..common {
        if a.events[i] != b.events[i] {
            diff.first_divergence = Some(i);
            diff.divergence_detail = Some((a.events[i].to_string(), b.events[i].to_string()));
            return diff;
        }
    }
    if a.events.len() != b.events.len() {
        diff.first_divergence = Some(common);
        let render = |t: &Trace| {
            t.events
                .get(common)
                .map_or_else(|| "<absent>".to_owned(), |e| e.to_string())
        };
        diff.divergence_detail = Some((render(a), render(b)));
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::format::TraceHeader;
    use dram_sim::chip::Command;
    use dram_sim::sink::CommandOutcome;
    use dram_sim::time::Time;

    fn base() -> Trace {
        Trace {
            header: TraceHeader {
                profile_label: "Mfr. B x4 0".into(),
                seed: 5,
                geometry_hash: 10,
                dossier_digest: None,
                dropped: 0,
                meta: vec![],
            },
            events: (0..4)
                .map(|i| TraceEvent::Command {
                    cmd: Command::Activate { bank: 0, row: i },
                    at: Time::from_ns(u64::from(i) * 50),
                    outcome: CommandOutcome::Accepted,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_traces_diff_empty() {
        let a = base();
        let diff = diff_traces(&a, &a.clone());
        assert!(diff.identical());
        assert_eq!(diff.to_string(), "traces identical (4 events)");
    }

    #[test]
    fn header_and_event_differences_are_reported() {
        let a = base();
        let mut b = base();
        b.header.seed = 6;
        b.events[2] = TraceEvent::Marker {
            label: "odd".into(),
        };
        let diff = diff_traces(&a, &b);
        assert!(!diff.identical());
        assert_eq!(diff.header, vec!["seed 5 vs 6".to_owned()]);
        assert_eq!(diff.first_divergence, Some(2));
        let text = diff.to_string();
        assert!(text.contains("first divergence at event 2"), "{text}");
        assert!(text.contains("MARK odd"), "{text}");
    }

    #[test]
    fn length_difference_diverges_at_common_end() {
        let a = base();
        let mut b = base();
        b.events.truncate(2);
        let diff = diff_traces(&a, &b);
        assert_eq!(diff.first_divergence, Some(2));
        let (da, db) = diff.divergence_detail.expect("detail");
        assert!(da.contains("ACT bank=0 row=2"));
        assert_eq!(db, "<absent>");
    }
}
