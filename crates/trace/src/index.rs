//! The v2 segment index: per-segment metadata appended after a v1
//! payload so tools can seek, prune, and decode in parallel.
//!
//! # Layout (index section, all multi-byte scalars little-endian)
//!
//! ```text
//! magic            4 bytes   b"DRIX"
//! version          u16       1
//! flags            u16       must be 0
//! events offset    varint    byte offset of the first event in the payload
//! segment count    varint
//! per segment:
//!   label          varint length + UTF-8 bytes ("" for an unmarked
//!                  leading segment)
//!   offset         varint    byte offset of the segment in the payload
//!   length         varint    byte length of the segment
//!   base ps        varint    delta-decode base: the previous timed
//!                  event's timestamp at the segment's first byte
//!   timed flag     u8        0 = no timed events, 1 = bounds follow
//!   [min ps        varint    smallest timestamp in the segment]
//!   [max ps        varint    largest timestamp in the segment]
//!   event count    varint
//!   bank count     varint    then per bank: varint, strictly increasing
//!   op counts      10 varints, [`SEGMENT_MNEMONICS`] order
//!   digest         u64       fnv1a-64 over the segment's payload bytes
//! ```
//!
//! The index section is followed by a fixed 24-byte trailer — index
//! length `u64`, fnv1a-64 of the index section `u64`, then the 8 magic
//! bytes `b"DRTRIDX1"` — so a reader finds the index from the end of the
//! file without touching the payload, and any damage to the footer is
//! caught by the digest before the index is trusted. Decoding is total:
//! every malformed index maps to [`TraceError::CorruptIndex`], never a
//! panic.

use crate::error::TraceError;
use crate::event::TraceEvent;
use crate::varint;
use dram_sim::digest::fnv1a_64;

/// The four magic bytes the index section starts with.
pub const INDEX_MAGIC: [u8; 4] = *b"DRIX";

/// The index format version this build reads and writes.
pub const INDEX_VERSION: u16 = 1;

/// The eight magic bytes a v2 container ends with.
pub const TRAILER_MAGIC: [u8; 8] = *b"DRTRIDX1";

/// Size of the fixed trailer: index length, index digest, magic.
pub const TRAILER_LEN: usize = 24;

/// Marker prefix the characterization pipeline emits at phase
/// boundaries (`phase:structure`, `phase:retention`, ...).
pub const PHASE_MARKER_PREFIX: &str = "phase:";

/// Marker prefix for named sub-phase spans (`span:trr_window`, ...).
pub const SPAN_MARKER_PREFIX: &str = "span:";

/// Marker prefix a sharded recording opens each per-bank segment with
/// (`shard:bank=3`); [`Trace::split_at_markers`](crate::Trace::split_at_markers)
/// on this prefix is the inverse of the sharded concat.
pub const SHARD_MARKER_PREFIX: &str = "shard:bank=";

/// The marker prefixes that open a new segment when building an index,
/// in match order.
pub const DEFAULT_SEGMENT_PREFIXES: [&str; 3] =
    [PHASE_MARKER_PREFIX, SPAN_MARKER_PREFIX, SHARD_MARKER_PREFIX];

/// Mnemonics for the per-segment op counters, in stored order. The
/// first six mirror [`Command::mnemonic`](dram_sim::Command::mnemonic);
/// the rest cover the loop-accelerated and annotation events.
pub const SEGMENT_MNEMONICS: [&str; 10] = [
    "act", "pre", "rd", "wr", "ref", "rfm", "burst", "refw", "temp", "mark",
];

/// Index of `ev`'s op counter in [`SEGMENT_MNEMONICS`].
pub(crate) fn event_op_index(ev: &TraceEvent) -> usize {
    match ev {
        TraceEvent::Command { cmd, .. } => match cmd.mnemonic() {
            "act" => 0,
            "pre" => 1,
            "rd" => 2,
            "wr" => 3,
            "ref" => 4,
            _ => 5,
        },
        TraceEvent::Burst { .. } => 6,
        TraceEvent::RefreshWindow { .. } => 7,
        TraceEvent::SetTemperature { .. } => 8,
        TraceEvent::Marker { .. } => 9,
    }
}

/// The mnemonic an event counts under in a segment's op table.
pub fn event_mnemonic(ev: &TraceEvent) -> &'static str {
    SEGMENT_MNEMONICS[event_op_index(ev)]
}

/// The bank an event addresses, if it is bank-scoped (`REF`, refresh
/// windows, temperature changes, and markers have none).
pub fn event_bank(ev: &TraceEvent) -> Option<u32> {
    match ev {
        TraceEvent::Command { cmd, .. } => cmd.bank(),
        TraceEvent::Burst { bank, .. } => Some(*bank),
        TraceEvent::RefreshWindow { .. }
        | TraceEvent::SetTemperature { .. }
        | TraceEvent::Marker { .. } => None,
    }
}

/// Everything the index records about one segment of the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Label of the marker that opened the segment; `""` for the
    /// unmarked leading segment (or the whole file when no marker
    /// matched).
    pub label: String,
    /// Byte offset of the segment within the payload.
    pub offset: u64,
    /// Byte length of the segment.
    pub len: u64,
    /// Timestamp-delta base at the segment's first byte: the previous
    /// timed event's picosecond value, `0` for the first segment.
    /// Timestamps delta-chain across the whole stream, so a segment
    /// cannot be decoded independently without it.
    pub base_ps: u64,
    /// Smallest timestamp in the segment, if it has timed events. For
    /// a monotone stream this is the first timed event's timestamp.
    pub min_ps: Option<u64>,
    /// Largest timestamp in the segment, if it has timed events. For a
    /// monotone stream this is the last timed event's timestamp.
    pub max_ps: Option<u64>,
    /// Number of events in the segment.
    pub events: u64,
    /// Sorted, deduplicated banks addressed by the segment's events.
    pub banks: Vec<u32>,
    /// Event counts per mnemonic, [`SEGMENT_MNEMONICS`] order.
    pub ops: [u64; 10],
    /// fnv1a-64 over the segment's payload bytes.
    pub digest: u64,
}

impl SegmentMeta {
    /// The count recorded for `mnemonic`, `0` for unknown names.
    pub fn op_count(&self, mnemonic: &str) -> u64 {
        SEGMENT_MNEMONICS
            .iter()
            .position(|m| *m == mnemonic)
            .map_or(0, |i| self.ops[i])
    }

    /// Whether any event in the segment addresses `bank`.
    pub fn has_bank(&self, bank: u32) -> bool {
        self.banks.binary_search(&bank).is_ok()
    }

    /// Whether the segment's timestamp bounds intersect the inclusive
    /// range `[from, to]` (either bound optional). A segment without
    /// timed events cannot overlap a bounded range.
    pub fn overlaps_ps(&self, from: Option<u64>, to: Option<u64>) -> bool {
        if from.is_none() && to.is_none() {
            return true;
        }
        let (Some(min), Some(max)) = (self.min_ps, self.max_ps) else {
            return false;
        };
        from.is_none_or(|f| max >= f) && to.is_none_or(|t| min <= t)
    }
}

/// The decoded index of a v2 container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceIndex {
    /// Byte offset of the first event in the payload (end of the v1
    /// header); equal to the payload length when there are no events.
    pub events_offset: u64,
    /// Per-segment metadata, in payload order.
    pub segments: Vec<SegmentMeta>,
}

impl TraceIndex {
    /// Serializes the index section (without the trailer). Byte-stable:
    /// the same index always encodes to the same bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.segments.len() * 48);
        out.extend_from_slice(&INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        varint::encode_u64(&mut out, self.events_offset);
        varint::encode_u64(&mut out, self.segments.len() as u64);
        for seg in &self.segments {
            varint::encode_u64(&mut out, seg.label.len() as u64);
            out.extend_from_slice(seg.label.as_bytes());
            varint::encode_u64(&mut out, seg.offset);
            varint::encode_u64(&mut out, seg.len);
            varint::encode_u64(&mut out, seg.base_ps);
            match (seg.min_ps, seg.max_ps) {
                (Some(min), Some(max)) => {
                    out.push(1);
                    varint::encode_u64(&mut out, min);
                    varint::encode_u64(&mut out, max);
                }
                _ => out.push(0),
            }
            varint::encode_u64(&mut out, seg.events);
            varint::encode_u64(&mut out, seg.banks.len() as u64);
            for bank in &seg.banks {
                varint::encode_u64(&mut out, u64::from(*bank));
            }
            for count in &seg.ops {
                varint::encode_u64(&mut out, *count);
            }
            out.extend_from_slice(&seg.digest.to_le_bytes());
        }
        out
    }

    /// Decodes an index section. Total: every malformed input yields
    /// [`TraceError::CorruptIndex`] with the offset of the damage,
    /// never a panic. Offsets are relative to the section start.
    pub fn from_bytes(buf: &[u8]) -> Result<TraceIndex, TraceError> {
        let mut r = IndexReader { buf, pos: 0 };
        let magic = r.take(4, "index magic")?;
        if magic != INDEX_MAGIC {
            return Err(corrupt(0, "bad index magic"));
        }
        let version = r.u16_le("index version")?;
        if version != INDEX_VERSION {
            return Err(corrupt(4, "unsupported index version"));
        }
        let flags = r.u16_le("index flags")?;
        if flags != 0 {
            return Err(corrupt(6, "unknown index flag bits"));
        }
        let events_offset = r.varint("events offset")?;
        let count = r.varint("segment count")?;
        if count > r.remaining() as u64 {
            return Err(corrupt(r.pos, "segment count exceeds remaining input"));
        }
        let mut segments = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let label = r.string("segment label")?;
            let offset = r.varint("segment offset")?;
            let len = r.varint("segment length")?;
            let base_ps = r.varint("segment base ps")?;
            let (min_ps, max_ps) = match r.u8("segment timed flag")? {
                0 => (None, None),
                1 => {
                    let min = r.varint("segment min ps")?;
                    let max = r.varint("segment max ps")?;
                    if min > max {
                        return Err(corrupt(r.pos, "segment time bounds reversed"));
                    }
                    (Some(min), Some(max))
                }
                _ => return Err(corrupt(r.pos, "unknown segment timed flag")),
            };
            let events = r.varint("segment event count")?;
            let bank_count = r.varint("segment bank count")?;
            if bank_count > r.remaining() as u64 {
                return Err(corrupt(r.pos, "bank count exceeds remaining input"));
            }
            let mut banks = Vec::with_capacity(bank_count as usize);
            for _ in 0..bank_count {
                let bank = r.varint("segment bank")?;
                let bank =
                    u32::try_from(bank).map_err(|_| corrupt(r.pos, "segment bank exceeds u32"))?;
                if banks.last().is_some_and(|prev| *prev >= bank) {
                    return Err(corrupt(r.pos, "segment banks not strictly increasing"));
                }
                banks.push(bank);
            }
            let mut ops = [0u64; 10];
            for slot in &mut ops {
                *slot = r.varint("segment op count")?;
            }
            let op_total: u64 = ops
                .iter()
                .try_fold(0u64, |acc, c| acc.checked_add(*c))
                .ok_or_else(|| corrupt(r.pos, "segment op counts overflow"))?;
            if op_total != events {
                return Err(corrupt(
                    r.pos,
                    "segment op counts disagree with event count",
                ));
            }
            if events == 0 {
                return Err(corrupt(r.pos, "empty segment"));
            }
            let digest = r.u64_le("segment digest")?;
            segments.push(SegmentMeta {
                label,
                offset,
                len,
                base_ps,
                min_ps,
                max_ps,
                events,
                banks,
                ops,
                digest,
            });
        }
        if r.remaining() != 0 {
            return Err(corrupt(r.pos, "trailing bytes after last segment entry"));
        }
        Ok(TraceIndex {
            events_offset,
            segments,
        })
    }

    /// Checks the index against the payload it claims to describe:
    /// segments must tile the event region contiguously and their event
    /// counts must sum to the header's declared count.
    pub fn validate(&self, payload_len: u64, header_event_count: u64) -> Result<(), TraceError> {
        if self.events_offset > payload_len {
            return Err(corrupt(0, "events offset beyond payload"));
        }
        let mut cursor = self.events_offset;
        let mut events = 0u64;
        for seg in &self.segments {
            if seg.offset != cursor {
                return Err(corrupt(0, "segments do not tile the payload"));
            }
            cursor = cursor
                .checked_add(seg.len)
                .ok_or_else(|| corrupt(0, "segment length overflow"))?;
            events = events
                .checked_add(seg.events)
                .ok_or_else(|| corrupt(0, "segment event counts overflow"))?;
        }
        if cursor != payload_len {
            return Err(corrupt(0, "segments do not cover the payload"));
        }
        if events != header_event_count {
            return Err(corrupt(0, "segment event counts disagree with header"));
        }
        Ok(())
    }

    /// Verifies every segment digest against the payload bytes.
    pub fn verify_payload(&self, payload: &[u8]) -> Result<(), TraceError> {
        for seg in &self.segments {
            let (Ok(start), Ok(len)) = (usize::try_from(seg.offset), usize::try_from(seg.len))
            else {
                return Err(corrupt(0, "segment bounds exceed address space"));
            };
            let Some(bytes) = start
                .checked_add(len)
                .and_then(|end| payload.get(start..end))
            else {
                return Err(corrupt(0, "segment bounds beyond payload"));
            };
            if fnv1a_64(bytes) != seg.digest {
                return Err(TraceError::Corrupt {
                    offset: start,
                    what: "segment payload digest mismatch",
                });
            }
        }
        Ok(())
    }
}

fn corrupt(offset: usize, what: &'static str) -> TraceError {
    TraceError::CorruptIndex { offset, what }
}

/// Bounds-checked cursor over an index section; every failure maps to
/// [`TraceError::CorruptIndex`].
struct IndexReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> IndexReader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt(self.pos, what))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt(self.pos, what))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, TraceError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16_le(&mut self, what: &'static str) -> Result<u16, TraceError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64_le(&mut self, what: &'static str) -> Result<u64, TraceError> {
        let b = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn varint(&mut self, what: &'static str) -> Result<u64, TraceError> {
        varint::decode_u64(self.buf, &mut self.pos).map_err(|_| corrupt(self.pos, what))
    }

    fn string(&mut self, what: &'static str) -> Result<String, TraceError> {
        let len = self.varint(what)?;
        if len > self.remaining() as u64 {
            return Err(corrupt(self.pos, what));
        }
        let bytes = self.take(len as usize, what)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| corrupt(self.pos, "invalid UTF-8 in segment label"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> TraceIndex {
        TraceIndex {
            events_offset: 40,
            segments: vec![
                SegmentMeta {
                    label: String::new(),
                    offset: 40,
                    len: 12,
                    base_ps: 0,
                    min_ps: Some(1_000),
                    max_ps: Some(5_000),
                    events: 3,
                    banks: vec![0, 2],
                    ops: [2, 0, 0, 0, 0, 0, 0, 0, 0, 1],
                    digest: 0xdead_beef,
                },
                SegmentMeta {
                    label: "shard:bank=1".into(),
                    offset: 52,
                    len: 9,
                    base_ps: 5_000,
                    min_ps: None,
                    max_ps: None,
                    events: 2,
                    banks: vec![],
                    ops: [0, 0, 0, 0, 0, 0, 0, 0, 1, 1],
                    digest: 7,
                },
            ],
        }
    }

    #[test]
    fn index_round_trips_and_is_byte_stable() {
        let index = sample_index();
        let bytes = index.to_bytes();
        assert_eq!(bytes, index.to_bytes());
        let back = TraceIndex::from_bytes(&bytes).expect("round trip decodes");
        assert_eq!(back, index);
        assert!(index.validate(61, 5).is_ok());
    }

    #[test]
    fn validate_rejects_gaps_and_count_mismatches() {
        let index = sample_index();
        assert!(matches!(
            index.validate(60, 5),
            Err(TraceError::CorruptIndex {
                what: "segments do not cover the payload",
                ..
            })
        ));
        assert!(matches!(
            index.validate(61, 6),
            Err(TraceError::CorruptIndex {
                what: "segment event counts disagree with header",
                ..
            })
        ));
        let mut gap = sample_index();
        gap.segments[1].offset += 1;
        assert!(matches!(
            gap.validate(62, 5),
            Err(TraceError::CorruptIndex {
                what: "segments do not tile the payload",
                ..
            })
        ));
    }

    #[test]
    fn every_truncation_point_is_a_structured_error() {
        let bytes = sample_index().to_bytes();
        for len in 0..bytes.len() {
            let err = TraceIndex::from_bytes(&bytes[..len]).expect_err("prefix must not decode");
            assert!(
                matches!(err, TraceError::CorruptIndex { .. }),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn structural_damage_is_reported() {
        let mut bytes = sample_index().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            TraceIndex::from_bytes(&bytes),
            Err(TraceError::CorruptIndex {
                what: "bad index magic",
                ..
            })
        ));
        let mut bytes = sample_index().to_bytes();
        bytes[4] = 9;
        assert!(matches!(
            TraceIndex::from_bytes(&bytes),
            Err(TraceError::CorruptIndex {
                what: "unsupported index version",
                ..
            })
        ));
        let mut bytes = sample_index().to_bytes();
        bytes.push(0);
        assert!(matches!(
            TraceIndex::from_bytes(&bytes),
            Err(TraceError::CorruptIndex {
                what: "trailing bytes after last segment entry",
                ..
            })
        ));
    }

    #[test]
    fn segment_meta_answers_pruning_questions() {
        let seg = sample_index().segments[0].clone();
        assert_eq!(seg.op_count("act"), 2);
        assert_eq!(seg.op_count("mark"), 1);
        assert_eq!(seg.op_count("nonsense"), 0);
        assert!(seg.has_bank(2));
        assert!(!seg.has_bank(1));
        assert!(seg.overlaps_ps(None, None));
        assert!(seg.overlaps_ps(Some(0), Some(1_000)));
        assert!(seg.overlaps_ps(Some(5_000), None));
        assert!(!seg.overlaps_ps(Some(5_001), None));
        assert!(!seg.overlaps_ps(None, Some(999)));
        // A segment without timed events never overlaps a bounded range.
        let untimed = sample_index().segments[1].clone();
        assert!(untimed.overlaps_ps(None, None));
        assert!(!untimed.overlaps_ps(Some(0), None));
    }
}
