//! The owned trace event type: what one [`ChipEvent`] becomes once it is
//! kept beyond the sink callback.

use dram_sim::chip::Command;
use dram_sim::sink::{ChipEvent, CommandOutcome};
use dram_sim::time::Time;
use std::fmt;

/// One recorded event at the chip's command boundary.
///
/// This is the owned mirror of [`ChipEvent`]: marker labels are `String`s
/// and timestamps are absolute. The on-disk form delta-encodes the
/// timestamps; in memory they are always absolute [`Time`] values.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A pin-level command through `DramChip::issue`.
    Command {
        /// The command as issued.
        cmd: Command,
        /// Its timestamp.
        at: Time,
        /// What the chip did with it.
        outcome: CommandOutcome,
    },
    /// A loop-accelerated `ACT`-`PRE` burst.
    Burst {
        /// Bank index.
        bank: u32,
        /// Pin-level row address.
        row: u32,
        /// Activations in the burst.
        count: u64,
        /// Per-activation open time.
        each_on: Time,
        /// Burst start timestamp.
        at: Time,
        /// What the chip did with it.
        outcome: CommandOutcome,
    },
    /// A loop-accelerated full refresh window.
    RefreshWindow {
        /// Timestamp of the window.
        at: Time,
        /// What the chip did with it.
        outcome: CommandOutcome,
    },
    /// The die temperature changed.
    SetTemperature {
        /// New die temperature, °C.
        celsius: f64,
    },
    /// An out-of-band phase marker.
    Marker {
        /// The marker label.
        label: String,
    },
}

impl TraceEvent {
    /// Copies a borrowed chip event into its owned form.
    pub fn from_chip(ev: &ChipEvent<'_>) -> TraceEvent {
        match *ev {
            ChipEvent::Command { cmd, at, outcome } => TraceEvent::Command { cmd, at, outcome },
            ChipEvent::Burst {
                bank,
                row,
                count,
                each_on,
                at,
                outcome,
            } => TraceEvent::Burst {
                bank,
                row,
                count,
                each_on,
                at,
                outcome,
            },
            ChipEvent::RefreshWindow { at, outcome } => TraceEvent::RefreshWindow { at, outcome },
            ChipEvent::SetTemperature { celsius } => TraceEvent::SetTemperature { celsius },
            ChipEvent::Marker { label } => TraceEvent::Marker {
                label: label.to_owned(),
            },
        }
    }

    /// Borrows this owned event back as a [`ChipEvent`], the form every
    /// [`dram_sim::CommandSink`] consumes. Together with
    /// [`TraceEvent::from_chip`] this makes sinks replayable over
    /// recorded traces: feeding a trace's events through a sink
    /// reproduces exactly what the sink would have seen live.
    pub fn to_chip(&self) -> ChipEvent<'_> {
        match *self {
            TraceEvent::Command { cmd, at, outcome } => ChipEvent::Command { cmd, at, outcome },
            TraceEvent::Burst {
                bank,
                row,
                count,
                each_on,
                at,
                outcome,
            } => ChipEvent::Burst {
                bank,
                row,
                count,
                each_on,
                at,
                outcome,
            },
            TraceEvent::RefreshWindow { at, outcome } => ChipEvent::RefreshWindow { at, outcome },
            TraceEvent::SetTemperature { celsius } => ChipEvent::SetTemperature { celsius },
            TraceEvent::Marker { ref label } => ChipEvent::Marker { label },
        }
    }

    /// Whether this recorded event is exactly the given live event.
    pub fn matches(&self, ev: &ChipEvent<'_>) -> bool {
        *self == TraceEvent::from_chip(ev)
    }

    /// The event's timestamp, if it is a timed (chip-clock) event.
    pub fn at(&self) -> Option<Time> {
        match self {
            TraceEvent::Command { at, .. }
            | TraceEvent::Burst { at, .. }
            | TraceEvent::RefreshWindow { at, .. } => Some(*at),
            TraceEvent::SetTemperature { .. } | TraceEvent::Marker { .. } => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Command { cmd, at, outcome } => {
                match cmd {
                    Command::Activate { bank, row } => write!(f, "ACT bank={bank} row={row}")?,
                    Command::Precharge { bank } => write!(f, "PRE bank={bank}")?,
                    Command::Read { bank, col } => write!(f, "RD bank={bank} col={col}")?,
                    Command::Write { bank, col, data } => {
                        write!(f, "WR bank={bank} col={col} data=0x{data:016x}")?
                    }
                    Command::Refresh => write!(f, "REF")?,
                    Command::Rfm { bank } => write!(f, "RFM bank={bank}")?,
                }
                write!(f, " @{at} -> {outcome}")
            }
            TraceEvent::Burst {
                bank,
                row,
                count,
                each_on,
                at,
                outcome,
            } => write!(
                f,
                "BURST bank={bank} row={row} x{count} on={each_on} @{at} -> {outcome}"
            ),
            TraceEvent::RefreshWindow { at, outcome } => write!(f, "REFW @{at} -> {outcome}"),
            TraceEvent::SetTemperature { celsius } => write!(f, "TEMP {celsius}C"),
            TraceEvent::Marker { label } => write!(f, "MARK {label}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::chip::CommandError;

    #[test]
    fn from_chip_round_trips_and_matches() {
        let live = ChipEvent::Command {
            cmd: Command::Read { bank: 1, col: 3 },
            at: Time::from_ns(100),
            outcome: CommandOutcome::Data(0xdead_beef),
        };
        let owned = TraceEvent::from_chip(&live);
        assert!(owned.matches(&live));
        assert!(!owned.matches(&ChipEvent::Marker { label: "x" }));
        assert_eq!(owned.at(), Some(Time::from_ns(100)));

        let marker = TraceEvent::from_chip(&ChipEvent::Marker { label: "phase" });
        assert_eq!(
            marker,
            TraceEvent::Marker {
                label: "phase".into()
            }
        );
        assert_eq!(marker.at(), None);
    }

    #[test]
    fn events_render_one_line_each() {
        let ev = TraceEvent::Command {
            cmd: Command::Activate { bank: 0, row: 21 },
            at: Time::from_ps(500),
            outcome: CommandOutcome::Rejected(CommandError::RowAlreadyOpen),
        };
        let line = ev.to_string();
        assert!(line.contains("ACT bank=0 row=21"), "{line}");
        assert!(line.contains("rejected: a row is already open"), "{line}");
        assert!(!line.contains('\n'));

        let burst = TraceEvent::Burst {
            bank: 1,
            row: 2,
            count: 1000,
            each_on: Time::from_ns(36),
            at: Time::from_ns(50),
            outcome: CommandOutcome::Accepted,
        };
        assert!(burst.to_string().contains("BURST bank=1 row=2 x1000"));
    }
}
