//! Error types for trace decoding ([`TraceError`]) and trace replay
//! ([`ReplayError`]).
//!
//! Decoding never panics on hostile input: every way a byte stream can be
//! malformed maps to a [`TraceError`] variant carrying the offset where
//! decoding stopped. Replay failures are semantic — the trace decoded
//! fine, but it cannot (or did not) reproduce on the given chip.

use std::error::Error;
use std::fmt;

/// A trace byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input does not start with the `DRTR` magic bytes.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The trace was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// The single version this build can read.
        supported: u16,
    },
    /// The input ended before the fixed header was complete.
    TruncatedHeader {
        /// Byte offset at which input ran out.
        offset: usize,
    },
    /// The input ended inside the event stream.
    TruncatedEvents {
        /// Byte offset at which input ran out.
        offset: usize,
        /// Index of the event being decoded.
        index: u64,
    },
    /// The input is structurally invalid (bad varint, unknown opcode,
    /// impossible length, trailing garbage, ...).
    Corrupt {
        /// Byte offset of the offending data.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// Segments offered to [`Trace::concat`](crate::Trace::concat) do
    /// not belong to one run (identity fields disagree, or there were
    /// no segments at all).
    SegmentMismatch {
        /// Which identity field disagreed.
        what: &'static str,
    },
    /// The v2 index footer is damaged or disagrees with the payload it
    /// describes. The v1 payload itself may still be intact; container
    /// readers fall back to a whole-file decode when it is (see
    /// [`IndexedTrace::from_bytes`](crate::lake::IndexedTrace::from_bytes)).
    CorruptIndex {
        /// Byte offset of the offending data, relative to the start of
        /// the index section.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic { found } => {
                write!(f, "not a dram-trace stream (magic {found:02x?})")
            }
            TraceError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "trace format version {found} unsupported (this build reads v{supported})"
                )
            }
            TraceError::TruncatedHeader { offset } => {
                write!(f, "trace truncated inside header at byte {offset}")
            }
            TraceError::TruncatedEvents { offset, index } => {
                write!(
                    f,
                    "trace truncated at byte {offset} while decoding event {index}"
                )
            }
            TraceError::Corrupt { offset, what } => {
                write!(f, "corrupt trace at byte {offset}: {what}")
            }
            TraceError::SegmentMismatch { what } => {
                write!(f, "trace segments are not one run: {what}")
            }
            TraceError::CorruptIndex { offset, what } => {
                write!(f, "corrupt trace index at byte {offset}: {what}")
            }
        }
    }
}

impl Error for TraceError {}

/// A decoded trace could not be replayed against a chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace was recorded against a different chip profile.
    ProfileMismatch {
        /// Profile label stored in the trace.
        trace: String,
        /// Label of the profile offered for replay.
        profile: String,
    },
    /// Labels agree but the chip geometry hash does not — the profile
    /// definition changed since the trace was recorded.
    GeometryMismatch {
        /// Geometry hash stored in the trace.
        trace: u64,
        /// Geometry hash of the profile offered for replay.
        profile: u64,
    },
    /// The recorder's ring buffer overflowed while capturing; a partial
    /// trace cannot reproduce the run and is refused.
    PartialTrace {
        /// Events the recorder had to drop.
        dropped: u64,
    },
    /// Replay produced a different outcome than the trace recorded —
    /// the simulation is no longer bit-for-bit identical.
    Divergence {
        /// Index of the first diverging event.
        index: u64,
        /// The recorded event, rendered.
        expected: String,
        /// What replay produced instead, rendered.
        got: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::ProfileMismatch { trace, profile } => {
                write!(f, "trace was recorded on profile {trace:?}, not {profile:?}")
            }
            ReplayError::GeometryMismatch { trace, profile } => write!(
                f,
                "chip geometry changed since recording (trace {trace:#018x}, profile {profile:#018x})"
            ),
            ReplayError::PartialTrace { dropped } => {
                write!(f, "trace is partial: recorder dropped {dropped} event(s)")
            }
            ReplayError::Divergence { index, expected, got } => {
                write!(f, "replay diverged at event {index}: recorded `{expected}`, replay produced `{got}`")
            }
        }
    }
}

impl Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_errors_display_their_cause() {
        let cases: Vec<(TraceError, &str)> = vec![
            (
                TraceError::BadMagic { found: *b"ELF\x7f" },
                "not a dram-trace stream",
            ),
            (
                TraceError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9 unsupported (this build reads v1)",
            ),
            (
                TraceError::TruncatedHeader { offset: 3 },
                "inside header at byte 3",
            ),
            (
                TraceError::TruncatedEvents {
                    offset: 40,
                    index: 2,
                },
                "at byte 40 while decoding event 2",
            ),
            (
                TraceError::Corrupt {
                    offset: 7,
                    what: "unknown event opcode",
                },
                "at byte 7: unknown event opcode",
            ),
            (
                TraceError::CorruptIndex {
                    offset: 5,
                    what: "index digest mismatch",
                },
                "corrupt trace index at byte 5: index digest mismatch",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} should contain {needle:?}");
            assert!(std::error::Error::source(&err).is_none());
        }
    }

    #[test]
    fn replay_errors_display_their_cause() {
        let err = ReplayError::Divergence {
            index: 12,
            expected: "RD bank=0 col=3".into(),
            got: "rejected: no open row in bank".into(),
        };
        let text = err.to_string();
        assert!(text.contains("diverged at event 12"), "{text}");
        assert!(text.contains("RD bank=0 col=3"), "{text}");
        assert!(ReplayError::PartialTrace { dropped: 4 }
            .to_string()
            .contains("dropped 4 event(s)"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TraceError>();
        check::<ReplayError>();
    }
}
