//! Capture side: sinks that record a live run into a [`Trace`]
//! ([`TraceRecorder`], [`SharedRecorder`]) or check a live run against a
//! previously recorded one ([`TraceVerifier`], [`SharedVerifier`]).

use crate::event::TraceEvent;
use crate::format::{Trace, TraceHeader};
use crate::geometry_hash;
use dram_sim::profile::ChipProfile;
use dram_sim::sink::{ChipEvent, CommandSink};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// An in-memory ring buffer of trace events.
///
/// Unbounded by default; with a capacity it keeps the most recent events
/// and counts how many old ones it had to drop. A trace with a non-zero
/// drop count is *partial* — replay refuses it — but still useful as a
/// flight recorder ("what were the last N commands before the bug").
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: VecDeque<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder that keeps every event.
    pub fn unbounded() -> Self {
        TraceRecorder::default()
    }

    /// A recorder that keeps only the most recent `capacity` events,
    /// counting the rest as dropped. A capacity of zero keeps nothing.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            events: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends one owned event, evicting the oldest if at capacity.
    pub fn push(&mut self, ev: TraceEvent) {
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(ev);
    }

    /// Iterates the held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Consumes the recorder into a [`Trace`] for the given run identity.
    /// The caller fills in `dossier_digest` and `meta` afterwards if the
    /// run produced them.
    pub fn finish(self, profile: &ChipProfile, seed: u64) -> Trace {
        Trace {
            header: TraceHeader {
                profile_label: profile.label(),
                seed,
                geometry_hash: geometry_hash(profile),
                dossier_digest: None,
                dropped: self.dropped,
                meta: Vec::new(),
            },
            events: self.events.into(),
        }
    }
}

impl CommandSink for TraceRecorder {
    fn record(&mut self, event: ChipEvent<'_>) {
        self.push(TraceEvent::from_chip(&event));
    }
}

/// A cloneable handle to a [`TraceRecorder`] behind a mutex, so the chip
/// can own a sink handle while the caller keeps another to harvest the
/// trace after the run.
#[derive(Debug, Clone)]
pub struct SharedRecorder(Arc<Mutex<TraceRecorder>>);

impl SharedRecorder {
    /// A shared recorder that keeps every event.
    pub fn unbounded() -> Self {
        SharedRecorder(Arc::new(Mutex::new(TraceRecorder::unbounded())))
    }

    /// A shared recorder with a bounded ring buffer.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedRecorder(Arc::new(Mutex::new(TraceRecorder::with_capacity(capacity))))
    }

    fn lock(&self) -> MutexGuard<'_, TraceRecorder> {
        // A panic while the lock is held cannot corrupt a VecDeque of
        // plain events; recover the data rather than cascading the panic.
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A boxed sink handle for [`DramChip::set_sink`]; clones share the
    /// same buffer.
    ///
    /// [`DramChip::set_sink`]: dram_sim::DramChip::set_sink
    pub fn sink(&self) -> Box<dyn CommandSink + Send> {
        Box::new(self.clone())
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Events dropped because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped()
    }

    /// Drains the recorded events into a [`Trace`]; the shared buffer is
    /// left empty (a bounded buffer resets to unbounded).
    pub fn finish(&self, profile: &ChipProfile, seed: u64) -> Trace {
        std::mem::take(&mut *self.lock()).finish(profile, seed)
    }
}

impl CommandSink for SharedRecorder {
    fn record(&mut self, event: ChipEvent<'_>) {
        self.lock().push(TraceEvent::from_chip(&event));
    }
}

/// The first point where a live run stopped matching a recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the first diverging event.
    pub index: usize,
    /// The recorded event (`None`: the live run produced extra events).
    pub expected: Option<TraceEvent>,
    /// The live event (`None`: the live run ended early).
    pub got: Option<TraceEvent>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.expected, &self.got) {
            (Some(e), Some(g)) => {
                write!(
                    f,
                    "event {}: recorded `{e}`, live run produced `{g}`",
                    self.index
                )
            }
            (Some(e), None) => {
                write!(
                    f,
                    "event {}: recorded `{e}`, live run ended early",
                    self.index
                )
            }
            (None, Some(g)) => write!(
                f,
                "event {}: trace ended, live run produced extra `{g}`",
                self.index
            ),
            (None, None) => write!(f, "event {}: no divergence", self.index),
        }
    }
}

/// A sink that checks a live run against a recorded trace event-by-event.
///
/// Attach it (via [`SharedVerifier`]) to a fresh chip, re-run the same
/// experiment, then call `finish` — `Ok(n)` proves the run reproduced all
/// `n` recorded events bit-for-bit.
#[derive(Debug)]
pub struct TraceVerifier {
    expected: Vec<TraceEvent>,
    pos: usize,
    divergence: Option<Divergence>,
}

impl TraceVerifier {
    /// A verifier expecting exactly the given trace's events.
    pub fn new(trace: &Trace) -> Self {
        TraceVerifier {
            expected: trace.events.clone(),
            pos: 0,
            divergence: None,
        }
    }

    /// Events matched so far.
    pub fn checked(&self) -> usize {
        self.pos
    }

    /// The divergence hit so far, if any.
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    /// Ends verification: every recorded event must have been matched.
    // A `Divergence` carries two full events (~136 bytes); `finish` runs
    // once per replay, so the large-Err cost never sits on a hot path.
    #[allow(clippy::result_large_err)]
    pub fn finish(self) -> Result<usize, Divergence> {
        if let Some(d) = self.divergence {
            return Err(d);
        }
        if self.pos < self.expected.len() {
            return Err(Divergence {
                index: self.pos,
                expected: Some(self.expected[self.pos].clone()),
                got: None,
            });
        }
        Ok(self.pos)
    }
}

impl CommandSink for TraceVerifier {
    fn record(&mut self, event: ChipEvent<'_>) {
        if self.divergence.is_some() {
            return;
        }
        let got = TraceEvent::from_chip(&event);
        match self.expected.get(self.pos) {
            Some(e) if *e == got => self.pos += 1,
            Some(e) => {
                self.divergence = Some(Divergence {
                    index: self.pos,
                    expected: Some(e.clone()),
                    got: Some(got),
                });
            }
            None => {
                self.divergence = Some(Divergence {
                    index: self.pos,
                    expected: None,
                    got: Some(got),
                });
            }
        }
    }
}

/// A cloneable handle to a [`TraceVerifier`], mirroring [`SharedRecorder`].
#[derive(Debug, Clone)]
pub struct SharedVerifier(Arc<Mutex<TraceVerifier>>);

impl SharedVerifier {
    /// A shared verifier expecting the given trace's events.
    pub fn new(trace: &Trace) -> Self {
        SharedVerifier(Arc::new(Mutex::new(TraceVerifier::new(trace))))
    }

    fn lock(&self) -> MutexGuard<'_, TraceVerifier> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A boxed sink handle for [`DramChip::set_sink`].
    ///
    /// [`DramChip::set_sink`]: dram_sim::DramChip::set_sink
    pub fn sink(&self) -> Box<dyn CommandSink + Send> {
        Box::new(self.clone())
    }

    /// Events matched so far.
    pub fn checked(&self) -> usize {
        self.lock().checked()
    }

    /// Ends verification (see [`TraceVerifier::finish`]).
    #[allow(clippy::result_large_err)]
    pub fn finish(&self) -> Result<usize, Divergence> {
        std::mem::replace(
            &mut *self.lock(),
            TraceVerifier {
                expected: Vec::new(),
                pos: 0,
                divergence: None,
            },
        )
        .finish()
    }
}

impl CommandSink for SharedVerifier {
    fn record(&mut self, event: ChipEvent<'_>) {
        self.lock().record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::chip::Command;
    use dram_sim::sink::CommandOutcome;
    use dram_sim::time::Time;

    fn act(i: u64) -> ChipEvent<'static> {
        ChipEvent::Command {
            cmd: Command::Activate {
                bank: 0,
                row: i as u32,
            },
            at: Time::from_ns(i * 50),
            outcome: CommandOutcome::Accepted,
        }
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let mut rec = TraceRecorder::with_capacity(3);
        for i in 0..5 {
            rec.record(act(i));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let rows: Vec<u32> = rec
            .events()
            .map(|e| match e {
                TraceEvent::Command {
                    cmd: Command::Activate { row, .. },
                    ..
                } => *row,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(rows, vec![2, 3, 4]);

        let mut zero = TraceRecorder::with_capacity(0);
        zero.record(act(0));
        assert!(zero.is_empty());
        assert_eq!(zero.dropped(), 1);
    }

    #[test]
    fn shared_recorder_clones_feed_one_buffer() {
        let shared = SharedRecorder::unbounded();
        let mut sink = shared.sink();
        sink.record(act(0));
        sink.record(act(1));
        assert_eq!(shared.len(), 2);
        let trace = shared.finish(&ChipProfile::test_small(), 7);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.header.seed, 7);
        assert_eq!(
            trace.header.profile_label,
            ChipProfile::test_small().label()
        );
        assert_eq!(trace.header.dropped, 0);
        assert!(shared.is_empty(), "finish drains the shared buffer");
    }

    #[test]
    fn verifier_accepts_identical_and_flags_divergence() {
        let shared = SharedRecorder::unbounded();
        let mut sink = shared.sink();
        for i in 0..4 {
            sink.record(act(i));
        }
        let trace = shared.finish(&ChipProfile::test_small(), 0);

        let mut ok = TraceVerifier::new(&trace);
        for i in 0..4 {
            ok.record(act(i));
        }
        assert_eq!(ok.finish().expect("identical run verifies"), 4);

        let mut wrong = TraceVerifier::new(&trace);
        wrong.record(act(0));
        wrong.record(act(9));
        let d = wrong.finish().expect_err("diverging run fails");
        assert_eq!(d.index, 1);
        assert!(d.to_string().contains("recorded `ACT bank=0 row=1"), "{d}");

        let mut short = TraceVerifier::new(&trace);
        short.record(act(0));
        let d = short.finish().expect_err("short run fails");
        assert_eq!((d.index, d.got), (1, None));

        let mut long = TraceVerifier::new(&trace);
        for i in 0..5 {
            long.record(act(i));
        }
        let d = long.finish().expect_err("extra events fail");
        assert!(d.expected.is_none());
        assert!(d.to_string().contains("extra"), "{d}");
    }
}
