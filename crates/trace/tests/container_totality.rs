//! Totality fuzz for the v2 indexed container.
//!
//! The v2 format appends an index section and a fixed trailer to the
//! unchanged v1 byte stream, so every kind of damage to the appended
//! region must resolve to one of exactly two outcomes: a structured
//! [`TraceError`], or a clean fallback that decodes the intact payload
//! and reports the index problem via [`IndexedTrace::fallback`]. A
//! panic anywhere in the ladder is a bug. These tests drive the opener
//! through truncation at every byte, a flip of every footer byte, and
//! random garbage footers, asserting that any `Ok` carries exactly the
//! original events.

use dram_sim::rng::StreamRng;
use dram_sim::{Command, CommandOutcome, Time};
use dram_trace::index::TRAILER_MAGIC;
use dram_trace::{decode_container, IndexedTrace, Trace, TraceEvent, TraceHeader};

/// A small trace whose markers span all three default segment prefixes,
/// so the index under test has an unmarked leading segment plus phase,
/// span, and shard segments.
fn marked_trace() -> Trace {
    let mut events = vec![TraceEvent::SetTemperature { celsius: 45.0 }];
    let mut at_ns = 100u64;
    let mut push_work = |events: &mut Vec<TraceEvent>, bank: u32| {
        for i in 0..6u32 {
            events.push(TraceEvent::Command {
                cmd: Command::Activate { bank, row: i },
                at: Time::from_ns(at_ns),
                outcome: CommandOutcome::Accepted,
            });
            at_ns += 5;
            events.push(TraceEvent::Command {
                cmd: Command::Precharge { bank },
                at: Time::from_ns(at_ns),
                outcome: CommandOutcome::Accepted,
            });
            at_ns += 7;
        }
    };
    for (label, bank) in [
        ("phase:structure", 0u32),
        ("span:trr_window:enter", 1),
        ("shard:bank=2", 2),
        ("phase:power", 3),
    ] {
        events.push(TraceEvent::Marker {
            label: label.into(),
        });
        push_work(&mut events, bank);
    }
    Trace {
        header: TraceHeader {
            profile_label: "fuzz".into(),
            seed: 11,
            geometry_hash: 22,
            dossier_digest: None,
            dropped: 0,
            meta: vec![("kind".into(), "totality-fuzz".into())],
        },
        events,
    }
}

#[test]
fn truncation_at_every_byte_errors_or_decodes_the_intact_payload() {
    let trace = marked_trace();
    let v2 = trace.to_bytes_indexed();
    let payload_len = trace.to_bytes().len();
    assert!(v2.len() > payload_len, "container must carry an index");

    let mut ok_lens = Vec::new();
    for len in 0..v2.len() {
        let prefix = &v2[..len];
        // Both entry points must be total over every prefix.
        if let Ok(opened) = IndexedTrace::from_bytes(prefix) {
            let decoded = opened.decode_all().expect("an opened prefix decodes");
            assert_eq!(decoded.events, trace.events, "prefix {len}");
            ok_lens.push(len);
        }
        if let Ok(decoded) = decode_container(prefix) {
            assert_eq!(decoded, trace, "prefix {len}");
        }
    }
    // The only decodable strict prefix is the bare v1 payload: cutting
    // the trailer off leaves a valid v1 stream, anything else is a
    // structured error.
    assert_eq!(ok_lens, vec![payload_len]);

    // The full container opens indexed with no fallback.
    let whole = IndexedTrace::from_bytes(&v2).expect("full container opens");
    assert!(whole.is_indexed());
    assert!(whole.fallback().is_none());
}

#[test]
fn every_footer_byte_flip_errors_or_falls_back_with_equal_events() {
    let trace = marked_trace();
    let v2 = trace.to_bytes_indexed();
    let payload_len = trace.to_bytes().len();

    let mut fallbacks = 0usize;
    for i in payload_len..v2.len() {
        let mut mutated = v2.clone();
        mutated[i] ^= 0xff;
        // Flips that destroy the trailer magic degrade the bytes to
        // "v1 stream with trailing garbage", which is an error; the
        // payload is untouched, so any successful open must instead
        // have abandoned the damaged index and decoded the whole
        // stream — flagged via `fallback`, never silently.
        if let Ok(opened) = IndexedTrace::from_bytes(&mutated) {
            assert!(opened.fallback().is_some(), "byte {i}: damage unreported");
            assert!(!opened.is_indexed(), "byte {i}");
            let decoded = opened.decode_all().expect("fallback decodes");
            assert_eq!(decoded.events, trace.events, "byte {i}");
            fallbacks += 1;
        }
    }
    // The digest check catches most flips while the payload stays
    // recoverable, so the fallback path must actually be exercised.
    assert!(fallbacks > 0, "no flip took the fallback path");
}

#[test]
fn random_garbage_footers_never_panic() {
    let trace = marked_trace();
    let payload = trace.to_bytes();
    let mut rng = StreamRng::new(0x00d1_5ea5);

    for round in 0..64u64 {
        let garbage_len = rng.next_below(96) as usize;
        let mut bytes = payload.clone();
        for _ in 0..garbage_len {
            bytes.push(rng.next_u64() as u8);
        }
        // Half the rounds end with a plausible trailer: random length
        // and digest fields under the real magic, exercising the
        // damaged-index classification rather than the v1 reject.
        if round % 2 == 0 {
            bytes.extend_from_slice(&rng.next_u64().to_le_bytes());
            bytes.extend_from_slice(&rng.next_u64().to_le_bytes());
            bytes.extend_from_slice(&TRAILER_MAGIC);
        }
        if let Ok(opened) = IndexedTrace::from_bytes(&bytes) {
            let decoded = opened.decode_all().expect("an opened container decodes");
            assert_eq!(decoded.events, trace.events, "round {round}");
        }
    }

    // Fully random buffers (no valid payload at all) must error, not
    // panic.
    for round in 0..64u64 {
        let len = rng.next_below(512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        assert!(
            IndexedTrace::from_bytes(&bytes).is_err(),
            "round {round}: random bytes opened as a trace"
        );
    }
}

#[test]
fn damaged_index_with_intact_payload_falls_back_with_synthesized_segments() {
    let trace = marked_trace();
    let v2 = trace.to_bytes_indexed();
    let payload_len = trace.to_bytes().len();
    let labels: Vec<String> = IndexedTrace::from_bytes(&v2)
        .expect("valid container opens")
        .segments()
        .iter()
        .map(|s| s.label.clone())
        .collect();

    // Corrupt one byte inside the index section proper (past the DRIX
    // magic, before the trailer): the digest check rejects the index,
    // the payload decodes, and the synthesized segments carry the same
    // labels and event counts the real index would have.
    let mut mutated = v2.clone();
    mutated[payload_len + 6] ^= 0xff;
    let opened = IndexedTrace::from_bytes(&mutated).expect("fallback opens");
    assert!(opened.fallback().is_some());
    assert!(!opened.is_indexed());
    assert_eq!(opened.event_count(), trace.events.len() as u64);
    let synthesized: Vec<String> = opened.segments().iter().map(|s| s.label.clone()).collect();
    assert_eq!(synthesized, labels);
    assert_eq!(opened.decode_all().expect("decodes").events, trace.events);
}
