//! Property tests for the v2 segment index.
//!
//! Arbitrary [`StreamRng`]-generated event streams — markers at random
//! positions, including no markers at all and a marker as the very
//! first event — must round-trip through `to_bytes_indexed` with an
//! index whose segment table exactly describes the payload: contiguous
//! byte ranges, per-segment digests that recompute from the bytes,
//! metadata that recounts from the decoded events, and per-segment
//! decodes that concatenate back to the original stream.

use dram_sim::digest::fnv1a_64;
use dram_sim::rng::StreamRng;
use dram_sim::{Command, CommandOutcome, Time};
use dram_trace::index::{event_bank, event_mnemonic};
use dram_trace::{split_container, Container, IndexedTrace, Trace, TraceEvent, TraceHeader};

/// Marker labels the generator draws from. The first four open
/// segments (default prefixes); the last is a free-form marker that
/// must stay inside whatever segment is open.
const MARKERS: [&str; 5] = [
    "phase:structure",
    "phase:power",
    "span:trr_window:enter",
    "shard:bank=1",
    "note:free-form",
];

/// One random event. Timestamps are drawn unordered on purpose: the
/// delta chain zigzags, so the index must cope with non-monotone time.
fn random_event(rng: &mut StreamRng) -> TraceEvent {
    let at = Time::from_ps(rng.next_below(1_000_000_000));
    let bank = rng.next_below(8) as u32;
    match rng.next_below(7) {
        0 => TraceEvent::Command {
            cmd: Command::Activate {
                bank,
                row: rng.next_below(2048) as u32,
            },
            at,
            outcome: CommandOutcome::Accepted,
        },
        1 => TraceEvent::Command {
            cmd: Command::Precharge { bank },
            at,
            outcome: CommandOutcome::Accepted,
        },
        2 => TraceEvent::Command {
            cmd: Command::Read {
                bank,
                col: rng.next_below(64) as u32,
            },
            at,
            outcome: CommandOutcome::Data(rng.next_u64()),
        },
        3 => TraceEvent::Burst {
            bank,
            row: rng.next_below(2048) as u32,
            count: 1 + rng.next_below(50),
            each_on: Time::from_ns(1 + rng.next_below(40)),
            at,
            outcome: CommandOutcome::Accepted,
        },
        4 => TraceEvent::RefreshWindow {
            at,
            outcome: CommandOutcome::Accepted,
        },
        5 => TraceEvent::SetTemperature {
            celsius: rng.next_below(80) as f64,
        },
        _ => TraceEvent::Marker {
            label: MARKERS[rng.next_below(MARKERS.len() as u64) as usize].into(),
        },
    }
}

/// A random trace for `seed`. Seed 0 is pinned to the zero-marker edge
/// case, seed 1 to the marker-first edge case; every other seed draws
/// freely.
fn random_trace(seed: u64) -> Trace {
    let mut rng = StreamRng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + seed);
    let count = match seed {
        0 => 40,
        _ => rng.next_below(150) as usize,
    };
    let mut events = Vec::with_capacity(count);
    if seed == 1 {
        events.push(TraceEvent::Marker {
            label: "phase:structure".into(),
        });
    }
    while events.len() < count {
        let ev = random_event(&mut rng);
        // Seed 0: suppress markers entirely so the whole stream is one
        // unlabeled segment.
        if seed == 0 && matches!(ev, TraceEvent::Marker { .. }) {
            continue;
        }
        events.push(ev);
    }
    Trace {
        header: TraceHeader {
            profile_label: format!("prop-{seed}"),
            seed,
            geometry_hash: 0xfeed,
            dossier_digest: None,
            dropped: 0,
            meta: vec![],
        },
        events,
    }
}

#[test]
fn random_traces_round_trip_segment_offsets_digests_and_metadata() {
    for seed in 0..16u64 {
        let trace = random_trace(seed);
        let v2 = trace.to_bytes_indexed();

        let Container::V2 { payload, index } = split_container(&v2) else {
            panic!("seed {seed}: container did not classify as V2");
        };
        assert_eq!(payload, &trace.to_bytes()[..], "seed {seed}");

        // Segments tile the event region of the payload: the first
        // starts where the header ends, each starts where the previous
        // ended, and the last ends at the payload boundary. Digests
        // recompute from the covered bytes.
        let mut expected_offset = index.events_offset;
        for (i, seg) in index.segments.iter().enumerate() {
            assert_eq!(seg.offset, expected_offset, "seed {seed} segment {i}");
            let bytes = &payload[seg.offset as usize..(seg.offset + seg.len) as usize];
            assert_eq!(seg.digest, fnv1a_64(bytes), "seed {seed} segment {i}");
            expected_offset += seg.len;
        }
        assert_eq!(expected_offset, payload.len() as u64, "seed {seed}");

        // Per-segment decodes concatenate to the original stream, and
        // each segment's metadata recounts from its decoded events.
        let opened = IndexedTrace::from_bytes(&v2).expect("opens");
        assert!(opened.is_indexed(), "seed {seed}");
        assert!(opened.fallback().is_none(), "seed {seed}");
        assert_eq!(opened.header(), &trace.header, "seed {seed}");
        let mut reassembled = Vec::new();
        for (i, seg) in opened.segments().iter().enumerate() {
            assert_eq!(
                opened.segment_event_start(i),
                reassembled.len() as u64,
                "seed {seed} segment {i}"
            );
            let events = opened.decode_segment(i).expect("segment decodes");
            assert_eq!(events.len() as u64, seg.events, "seed {seed} segment {i}");
            for ev in &events {
                assert!(
                    seg.op_count(event_mnemonic(ev)) > 0,
                    "seed {seed} segment {i}: op histogram misses {ev}"
                );
                if let Some(bank) = event_bank(ev) {
                    assert!(seg.has_bank(bank), "seed {seed} segment {i}");
                }
                if let Some(at) = ev.at() {
                    let ps = at.as_ps();
                    assert!(
                        seg.min_ps.is_some_and(|m| m <= ps) && seg.max_ps.is_some_and(|m| m >= ps),
                        "seed {seed} segment {i}: {ps} outside bounds"
                    );
                }
            }
            reassembled.extend(events);
        }
        assert_eq!(reassembled, trace.events, "seed {seed}");
        assert_eq!(
            opened.decode_parallel(3).expect("parallel decodes"),
            trace,
            "seed {seed}"
        );
    }
}

#[test]
fn zero_marker_and_marker_first_streams_index_as_expected() {
    // Seed 0: no markers — one unlabeled segment holding everything.
    let flat = random_trace(0);
    let opened = IndexedTrace::from_bytes(&flat.to_bytes_indexed()).expect("opens");
    assert_eq!(opened.segments().len(), 1);
    assert_eq!(opened.segments()[0].label, "");
    assert_eq!(opened.segments()[0].events, flat.events.len() as u64);

    // Seed 1: the very first event is a marker — no empty leading
    // segment, the marker's label opens segment 0.
    let fronted = random_trace(1);
    let opened = IndexedTrace::from_bytes(&fronted.to_bytes_indexed()).expect("opens");
    assert_eq!(opened.segments()[0].label, "phase:structure");

    // An empty trace still round-trips.
    let empty = Trace {
        header: flat.header.clone(),
        events: vec![],
    };
    let opened = IndexedTrace::from_bytes(&empty.to_bytes_indexed()).expect("opens");
    assert_eq!(opened.event_count(), 0);
    assert_eq!(opened.decode_all().expect("decodes"), empty);
}

#[test]
fn single_prefix_streams_split_identically_via_index_and_split_at_markers() {
    // When the only markers share one prefix, the index's segmentation
    // must agree with the older `split_at_markers` slicing exactly —
    // the index is a seekable encoding of the same partition.
    for seed in [2u64, 5, 9] {
        let mut rng = StreamRng::new(seed);
        let mut events = Vec::new();
        for shard in 0..4u32 {
            events.push(TraceEvent::Marker {
                label: format!("shard:bank={shard}"),
            });
            for _ in 0..rng.next_below(30) {
                let mut ev = random_event(&mut rng);
                while matches!(ev, TraceEvent::Marker { .. }) {
                    ev = random_event(&mut rng);
                }
                events.push(ev);
            }
        }
        let trace = Trace {
            header: TraceHeader {
                profile_label: "split".into(),
                seed,
                geometry_hash: 1,
                dossier_digest: None,
                dropped: 0,
                meta: vec![],
            },
            events,
        };
        let split = trace.split_at_markers("shard:bank=");
        let opened = IndexedTrace::from_bytes(&trace.to_bytes_indexed()).expect("opens");
        assert_eq!(opened.segments().len(), split.len(), "seed {seed}");
        for (i, part) in split.iter().enumerate() {
            assert_eq!(
                opened.decode_segment(i).expect("segment decodes"),
                part.events,
                "seed {seed} segment {i}"
            );
        }
    }
}
