//! Labeled metric registries with byte-stable snapshots.
//!
//! A [`Registry`] holds three metric families — monotonic counters,
//! last-write-wins gauges, and log2 [`Histogram`]s — each keyed by a
//! [`Key`] (metric name plus sorted label pairs). All storage is
//! `BTreeMap`, so iteration order, `Display`, and the JSON-lines
//! snapshot are fully determined by the data, never by insertion order
//! or thread scheduling.

use std::collections::BTreeMap;
use std::fmt;

use crate::histogram::Histogram;
use crate::{SCHEMA, SCHEMA_VERSION};

/// A metric identity: a name plus zero or more `(label, value)` pairs.
///
/// Labels are kept sorted by label name so two keys built from the same
/// pairs in different orders compare equal and render identically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    /// A key with no labels.
    pub fn name(name: &str) -> Key {
        Key {
            name: name.to_string(),
            labels: Vec::new(),
        }
    }

    /// A key with labels; pairs are sorted by label name (ties broken by
    /// value) regardless of argument order.
    pub fn of(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Key {
            name: name.to_string(),
            labels,
        }
    }

    /// The metric name.
    pub fn metric(&self) -> &str {
        &self.name
    }

    /// The sorted label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }
}

impl fmt::Display for Key {
    /// `name` or `name{k=v,k2=v2}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// An ordered collection of counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, i64>,
    histograms: BTreeMap<Key, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// True when no metric of any family has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the counter at `key` (creating it at zero).
    pub fn inc(&mut self, key: Key, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Reads a counter; absent counters read as zero.
    pub fn counter(&self, key: &Key) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets the gauge at `key` to `value`.
    pub fn set_gauge(&mut self, key: Key, value: i64) {
        self.gauges.insert(key, value);
    }

    /// Reads a gauge, if it has ever been set.
    pub fn gauge(&self, key: &Key) -> Option<i64> {
        self.gauges.get(key).copied()
    }

    /// Records one observation into the histogram at `key`.
    pub fn observe(&mut self, key: Key, value: u64) {
        self.histograms.entry(key).or_default().record(value);
    }

    /// Reads a histogram, if any observation has been recorded.
    pub fn histogram(&self, key: &Key) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&Key, i64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&Key, &Histogram)> {
        self.histograms.iter()
    }

    /// Sum of every counter sharing `name`, across all label sets.
    pub fn sum_counters(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Folds `other` into `self`: counters and histogram buckets add,
    /// gauges take the incoming value. Counter/histogram merging is
    /// commutative and associative, so fleet aggregation produces the
    /// same registry no matter what order workers finish in; gauges are
    /// last-write-wins, so callers must merge in a deterministic job
    /// order (the fleet merges in job-definition order).
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            self.inc(k.clone(), v);
        }
        for (k, &v) in &other.gauges {
            self.set_gauge(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Folds an ordered sequence of registries into one, by repeated
    /// [`merge`](Self::merge).
    ///
    /// The order of `parts` is the merge order — callers aggregating
    /// parallel work (fleet jobs, bank shards) must pass parts in their
    /// canonical order (job order, bank order), not completion order, so
    /// the gauges' last-write-wins semantics stay deterministic and the
    /// merged snapshot is byte-identical to a serial run's.
    pub fn merged<'a, I>(parts: I) -> Registry
    where
        I: IntoIterator<Item = &'a Registry>,
    {
        let mut out = Registry::new();
        for part in parts {
            out.merge(part);
        }
        out
    }

    /// Renders the registry as a versioned JSON-lines snapshot.
    ///
    /// Line 1 is the schema header; then one line per counter, gauge,
    /// and histogram, each family in key order. The output is
    /// **byte-stable**: the same metric state always renders to the same
    /// bytes. Histogram buckets are emitted sparsely as
    /// `[[index, count], …]` with the fixed log2 boundary convention
    /// (bucket 0 = {0}, bucket i = [2^(i-1), 2^i)), alongside
    /// deterministic `p50`/`p95`/`p99` estimates (see
    /// [`Histogram::quantile_estimate`]).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"{SCHEMA}\",\"version\":{SCHEMA_VERSION},\
             \"counters\":{},\"gauges\":{},\"histograms\":{}}}\n",
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len()
        ));
        for (key, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"labels\":{},\"value\":{value}}}\n",
                json_string(&key.name),
                json_labels(&key.labels)
            ));
        }
        for (key, value) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":{},\"labels\":{},\"value\":{value}}}\n",
                json_string(&key.name),
                json_labels(&key.labels)
            ));
        }
        for (key, hist) in &self.histograms {
            let mut buckets = String::from("[");
            for (i, (idx, count)) in hist.nonzero_buckets().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                buckets.push_str(&format!("[{idx},{count}]"));
            }
            buckets.push(']');
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":{},\"labels\":{},\
                 \"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":{buckets}}}\n",
                json_string(&key.name),
                json_labels(&key.labels),
                hist.count(),
                hist.sum(),
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0),
                hist.quantile_estimate(0.50).unwrap_or(0),
                hist.quantile_estimate(0.95).unwrap_or(0),
                hist.quantile_estimate(0.99).unwrap_or(0),
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        out.push_str(&json_string(v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_labels_sort_regardless_of_argument_order() {
        let a = Key::of("m", &[("bank", "3"), ("kind", "act")]);
        let b = Key::of("m", &[("kind", "act"), ("bank", "3")]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "m{bank=3,kind=act}");
        assert_eq!(Key::name("plain").to_string(), "plain");
    }

    #[test]
    fn snapshot_is_byte_stable_across_insertion_orders() {
        let mut a = Registry::new();
        a.inc(Key::of("cmds", &[("kind", "act")]), 2);
        a.inc(Key::of("cmds", &[("kind", "rd")]), 5);
        a.set_gauge(Key::name("temp_mc"), 45_000);
        a.observe(Key::name("lat_ps"), 7);
        a.observe(Key::name("lat_ps"), 4096);

        let mut b = Registry::new();
        b.observe(Key::name("lat_ps"), 4096);
        b.set_gauge(Key::name("temp_mc"), 45_000);
        b.inc(Key::of("cmds", &[("kind", "rd")]), 5);
        b.observe(Key::name("lat_ps"), 7);
        b.inc(Key::of("cmds", &[("kind", "act")]), 2);

        assert_eq!(a.to_json_lines(), b.to_json_lines());
        let snap = a.to_json_lines();
        assert!(snap.starts_with(&format!("{{\"schema\":\"{SCHEMA}\",\"version\":1,")));
        assert!(snap.contains("\"buckets\":[[3,1],[13,1]]"));
    }

    #[test]
    fn merge_adds_counters_and_histograms_and_overwrites_gauges() {
        let mut a = Registry::new();
        a.inc(Key::name("n"), 3);
        a.observe(Key::name("h"), 10);
        a.set_gauge(Key::name("g"), 1);
        let mut b = Registry::new();
        b.inc(Key::name("n"), 4);
        b.observe(Key::name("h"), 100);
        b.set_gauge(Key::name("g"), 2);

        a.merge(&b);
        assert_eq!(a.counter(&Key::name("n")), 7);
        assert_eq!(a.histogram(&Key::name("h")).unwrap().count(), 2);
        assert_eq!(a.gauge(&Key::name("g")), Some(2));
    }

    #[test]
    fn merged_folds_parts_in_the_given_order() {
        let mut a = Registry::new();
        a.inc(Key::name("n"), 3);
        a.set_gauge(Key::name("g"), 1);
        let mut b = Registry::new();
        b.inc(Key::name("n"), 4);
        b.set_gauge(Key::name("g"), 2);

        let ab = Registry::merged([&a, &b]);
        assert_eq!(ab.counter(&Key::name("n")), 7);
        // Gauges are last-write-wins, so part order decides.
        assert_eq!(ab.gauge(&Key::name("g")), Some(2));
        assert_eq!(Registry::merged([&b, &a]).gauge(&Key::name("g")), Some(1));
        assert!(Registry::merged(std::iter::empty::<&Registry>()).is_empty());
    }

    #[test]
    fn sum_counters_spans_label_sets() {
        let mut r = Registry::new();
        r.inc(Key::of("cmds", &[("kind", "act")]), 2);
        r.inc(Key::of("cmds", &[("kind", "pre")]), 3);
        r.inc(Key::name("other"), 99);
        assert_eq!(r.sum_counters("cmds"), 5);
        assert_eq!(r.sum_counters("absent"), 0);
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
