//! Fixed-bucket log2 histograms.
//!
//! Every histogram has the same 65 buckets: bucket 0 holds exactly the
//! value `0`, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. Fixed
//! boundaries make two histograms mergeable bucket-by-bucket with no
//! information loss — the property fleet aggregation relies on — and the
//! log2 spacing covers everything from single commands to multi-second
//! picosecond intervals in one shape.

use std::fmt;

/// Number of buckets in every [`Histogram`]: one for zero plus one per
/// power of two of the `u64` range.
pub const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram with count/sum/min/max sidecars.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    /// `u128`: a multi-million-sample histogram of picosecond intervals
    /// can overflow a `u64` sum.
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a value falls into: 0 for `0`, otherwise
    /// `floor(log2(v)) + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The half-open value range `[lo, hi)` of a bucket; bucket 0 is
    /// `[0, 1)` and the last bucket's `hi` saturates at `u64::MAX`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 1),
            i if i >= 64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observed value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// An estimate of the `q`-quantile (`0.0 ..= 1.0`) of the observed
    /// values (`None` when empty).
    ///
    /// The true rank-`ceil(q·count)` observation is located in its log2
    /// bucket exactly; its value is then linearly interpolated across
    /// the bucket's `[lo, hi)` range by rank, in integer arithmetic, and
    /// clamped to the observed `[min, max]`. The estimate is therefore
    /// deterministic, within one bucket width of the true quantile, and
    /// exact for the extremes (`q = 0` gives `min`, `q = 1` gives a
    /// value clamped to `max`).
    pub fn quantile_estimate(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, c) in self.nonzero_buckets() {
            if cum + c >= rank {
                let (lo, hi) = Self::bucket_bounds(idx);
                let within = rank - cum; // 1 ..= c
                                         // `within - 1` keeps the estimate inside [lo, hi): the
                                         // first ranked observation of a bucket estimates `lo`,
                                         // never the next bucket's edge.
                let est =
                    u128::from(lo) + u128::from(hi - lo) * u128::from(within - 1) / u128::from(c);
                let est = est.min(u128::from(u64::MAX)) as u64;
                return Some(est.clamp(self.min, self.max));
            }
            cum += c;
        }
        // Counts always sum to `count`, so the loop returns; this arm
        // only guards against future bucket-layout bugs.
        Some(self.max)
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Adds every observation of `other` into `self`. Lossless because
    /// bucket boundaries are fixed; commutative and associative, so merge
    /// order cannot affect the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .field(
                "buckets",
                &self.nonzero_buckets().collect::<Vec<(usize, u64)>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1024, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(lo <= v, "{v}");
            assert!(v < hi || hi == u64::MAX, "{v}");
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        for v in [5u64, 0, 100, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 112);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.mean(), Some(28.0));
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (3, 2), (7, 1)]);
    }

    #[test]
    fn quantile_estimates_bracket_and_clamp() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_estimate(0.5), None);
        // One value: every quantile is that value (clamped to min==max).
        h.record(100);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_estimate(q), Some(100));
        }
        // Uniform-ish spread: estimates are within the right bucket and
        // ordered.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_estimate(0.50).unwrap();
        let p95 = h.quantile_estimate(0.95).unwrap();
        let p99 = h.quantile_estimate(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // True p50 = 500 lives in bucket [256, 512); the estimate must too.
        assert!((256..=512).contains(&p50), "{p50}");
        assert!((512..=1000).contains(&p95), "{p95}");
        assert!((512..=1000).contains(&p99), "{p99}");
        // Extremes clamp to observed min/max.
        assert_eq!(h.quantile_estimate(0.0), Some(1));
        assert_eq!(h.quantile_estimate(1.0), Some(1000));
        // Zero-heavy histograms estimate 0 for low quantiles.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(0);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile_estimate(0.5), Some(0));
        assert_eq!(h.quantile_estimate(1.0), Some(1 << 20));
    }

    #[test]
    fn merge_is_lossless_and_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 9, 200] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 3, 4096] {
            b.record(v);
            all.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
    }
}
