//! # dram-telemetry
//!
//! A zero-dependency, deterministic metrics core for the DRAMScope
//! reproduction: the measurement layer under every simulator run,
//! characterization, and fleet sweep.
//!
//! Determinism is the design constraint everything else follows from.
//! The whole stack guarantees byte-identical output for identical
//! `(profile, seed)` inputs — parallel fleet runs included — and its
//! telemetry must not be the thing that breaks that. Therefore:
//!
//! * all metric storage is ordered ([`std::collections::BTreeMap`]), so a
//!   [`Registry::to_json_lines`] snapshot is **byte-stable**: same
//!   events in, same bytes out, independent of thread scheduling;
//! * spans and phases measure **simulated** time (picosecond deltas of
//!   the chip clock) and command counts, never the host clock, unless
//!   the `host-clock` cargo feature is explicitly enabled;
//! * histograms use fixed log2 buckets (no adaptive resizing), so two
//!   registries merge bucket-by-bucket without loss;
//! * [`Registry::merge`] is the fleet aggregation primitive: counters
//!   and histograms add (commutative and associative, so merge order
//!   cannot matter), gauges take the incoming value.
//!
//! The crate is intentionally free of DRAM-specific types — it counts
//! `u64`s under labeled names. The simulator-facing adapter
//! (`dram_sim::metrics::MetricsSink`) lives with the simulator; trace
//! post-processing (`dram_trace::trace_metrics`) lives with the trace
//! codec; this crate is the shared vocabulary underneath both.
//!
//! # Example
//!
//! ```
//! use dram_telemetry::{Key, Registry};
//!
//! let mut reg = Registry::new();
//! reg.inc(Key::of("commands_total", &[("kind", "act")]), 3);
//! reg.observe(Key::name("act_to_act_ps"), 45_000);
//! assert_eq!(reg.counter(&Key::of("commands_total", &[("kind", "act")])), 3);
//! let snapshot = reg.to_json_lines();
//! assert!(snapshot.starts_with("{\"schema\":\"dramscope.telemetry\""));
//! // Byte-stable: rendering twice gives identical bytes.
//! assert_eq!(snapshot, reg.to_json_lines());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod histogram;
pub mod registry;
pub mod span;

pub use histogram::{Histogram, BUCKETS};
pub use registry::{Key, Registry};
pub use span::{span_rollup, SpanSet, SpanTotals};

/// Schema identifier written on the first line of every snapshot.
pub const SCHEMA: &str = "dramscope.telemetry";

/// Snapshot schema version. Bump when the line format or the metric
/// vocabulary changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Marker-label prefix announcing a characterization phase switch
/// (`phase:structure`, `phase:remap`, …). A phase ends when the next one
/// begins; phases do not nest.
pub const PHASE_PREFIX: &str = "phase:";

/// Marker-label prefix for scoped spans (`span:<name>:enter` /
/// `span:<name>:exit`). Spans nest and may repeat; each enter/exit pair
/// accumulates into the same labeled metrics.
pub const SPAN_PREFIX: &str = "span:";

/// Suffix of a span-enter marker label.
pub const SPAN_ENTER_SUFFIX: &str = ":enter";

/// Suffix of a span-exit marker label.
pub const SPAN_EXIT_SUFFIX: &str = ":exit";

/// Builds the marker label that opens span `name`.
pub fn span_enter_label(name: &str) -> String {
    format!("{SPAN_PREFIX}{name}{SPAN_ENTER_SUFFIX}")
}

/// Builds the marker label that closes span `name`.
pub fn span_exit_label(name: &str) -> String {
    format!("{SPAN_PREFIX}{name}{SPAN_EXIT_SUFFIX}")
}

/// Parses a marker label into the telemetry event it encodes, if any.
///
/// Returns `None` for labels that carry no telemetry meaning (free-form
/// program markers still count toward `markers_total`, they just don't
/// move phases or spans).
pub fn parse_marker(label: &str) -> Option<MarkerKind<'_>> {
    if let Some(phase) = label.strip_prefix(PHASE_PREFIX) {
        return Some(MarkerKind::Phase(phase));
    }
    let body = label.strip_prefix(SPAN_PREFIX)?;
    if let Some(name) = body.strip_suffix(SPAN_ENTER_SUFFIX) {
        return Some(MarkerKind::SpanEnter(name));
    }
    if let Some(name) = body.strip_suffix(SPAN_EXIT_SUFFIX) {
        return Some(MarkerKind::SpanExit(name));
    }
    None
}

/// The telemetry meaning of a marker label (see [`parse_marker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind<'a> {
    /// `phase:<name>` — switch the current phase.
    Phase(&'a str),
    /// `span:<name>:enter` — open a scoped span.
    SpanEnter(&'a str),
    /// `span:<name>:exit` — close the innermost span of that name.
    SpanExit(&'a str),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_labels_round_trip_through_parse() {
        assert_eq!(
            parse_marker("phase:structure"),
            Some(MarkerKind::Phase("structure"))
        );
        assert_eq!(
            parse_marker(&span_enter_label("hammer")),
            Some(MarkerKind::SpanEnter("hammer"))
        );
        assert_eq!(
            parse_marker(&span_exit_label("hammer")),
            Some(MarkerKind::SpanExit("hammer"))
        );
        assert_eq!(parse_marker("program:write-read"), None);
        assert_eq!(parse_marker("span:unterminated"), None);
    }
}
