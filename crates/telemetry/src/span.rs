//! Phase and span accounting over simulated time.
//!
//! A [`SpanSet`] turns a stream of phase/span markers (plus the current
//! simulated picosecond clock and command count at each marker) into
//! accumulated per-name metrics. It deliberately never reads the host
//! clock: spans measure *simulated* `Time` deltas and command counts,
//! so the resulting registry is byte-identical across machines and
//! runs. Compiling with the `host-clock` cargo feature additionally
//! records wall-clock nanoseconds per phase/span under `*_wall_ns_total`
//! keys — useful for real profiling, but those keys are then host- and
//! load-dependent, which is why the feature is off by default.
//!
//! Phases are flat (entering one ends the previous); spans nest and may
//! repeat. Unbalanced exits (an exit with no matching open span) are
//! ignored rather than panicking — instrumentation must never take down
//! a characterization.

use crate::registry::{Key, Registry};

/// One open phase or span: where (in simulated time / command count) it
/// began.
#[derive(Debug, Clone)]
struct Open {
    name: String,
    start_ps: u64,
    start_commands: u64,
    #[cfg(feature = "host-clock")]
    start_wall: std::time::Instant,
}

impl Open {
    fn new(name: &str, now_ps: u64, commands: u64) -> Open {
        Open {
            name: name.to_string(),
            start_ps: now_ps,
            start_commands: commands,
            #[cfg(feature = "host-clock")]
            start_wall: std::time::Instant::now(),
        }
    }

    /// Accumulates this interval into `reg` under `{prefix}_count`,
    /// `{prefix}_commands_total`, and `{prefix}_sim_ps_total`, labeled
    /// with the phase/span name.
    fn close_into(&self, prefix: &str, now_ps: u64, commands: u64, reg: &mut Registry) {
        let label = [(prefix, self.name.as_str())];
        reg.inc(Key::of(&format!("{prefix}_count"), &label), 1);
        reg.inc(
            Key::of(&format!("{prefix}_commands_total"), &label),
            commands.saturating_sub(self.start_commands),
        );
        reg.inc(
            Key::of(&format!("{prefix}_sim_ps_total"), &label),
            now_ps.saturating_sub(self.start_ps),
        );
        #[cfg(feature = "host-clock")]
        reg.inc(
            Key::of(&format!("{prefix}_wall_ns_total"), &label),
            u64::try_from(self.start_wall.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
}

/// Tracks the current phase and the stack of open spans, folding closed
/// intervals into a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    phase: Option<Open>,
    spans: Vec<Open>,
}

impl SpanSet {
    /// Creates an empty span set (no phase, no open spans).
    pub fn new() -> SpanSet {
        SpanSet::default()
    }

    /// The name of the current phase, if one is open.
    pub fn current_phase(&self) -> Option<&str> {
        self.phase.as_ref().map(|o| o.name.as_str())
    }

    /// Switches to phase `name`, closing the previous phase (if any)
    /// into `reg`.
    pub fn phase_enter(&mut self, name: &str, now_ps: u64, commands: u64, reg: &mut Registry) {
        if let Some(prev) = self.phase.take() {
            prev.close_into("phase", now_ps, commands, reg);
        }
        self.phase = Some(Open::new(name, now_ps, commands));
    }

    /// Opens a span named `name`. Spans nest and may repeat.
    pub fn span_enter(&mut self, name: &str, now_ps: u64, commands: u64) {
        self.spans.push(Open::new(name, now_ps, commands));
    }

    /// Closes the innermost open span named `name` into `reg`. An exit
    /// with no matching open span is ignored.
    pub fn span_exit(&mut self, name: &str, now_ps: u64, commands: u64, reg: &mut Registry) {
        if let Some(i) = self.spans.iter().rposition(|s| s.name == name) {
            let open = self.spans.remove(i);
            open.close_into("span", now_ps, commands, reg);
        }
    }

    /// Closes the current phase and every still-open span into `reg`.
    /// Call once at end of run so trailing intervals are not lost.
    pub fn finish(&mut self, now_ps: u64, commands: u64, reg: &mut Registry) {
        if let Some(phase) = self.phase.take() {
            phase.close_into("phase", now_ps, commands, reg);
        }
        while let Some(span) = self.spans.pop() {
            span.close_into("span", now_ps, commands, reg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_flat_and_accumulate_sim_time_and_commands() {
        let mut reg = Registry::new();
        let mut set = SpanSet::new();
        set.phase_enter("structure", 0, 0, &mut reg);
        assert_eq!(set.current_phase(), Some("structure"));
        set.phase_enter("power", 1_000, 10, &mut reg);
        set.finish(5_000, 25, &mut reg);
        assert_eq!(set.current_phase(), None);

        let p = |m: &str, n: &str| Key::of(m, &[("phase", n)]);
        assert_eq!(reg.counter(&p("phase_count", "structure")), 1);
        assert_eq!(reg.counter(&p("phase_sim_ps_total", "structure")), 1_000);
        assert_eq!(reg.counter(&p("phase_commands_total", "structure")), 10);
        assert_eq!(reg.counter(&p("phase_sim_ps_total", "power")), 4_000);
        assert_eq!(reg.counter(&p("phase_commands_total", "power")), 15);
    }

    #[test]
    fn spans_nest_repeat_and_tolerate_unbalanced_exits() {
        let mut reg = Registry::new();
        let mut set = SpanSet::new();
        set.span_enter("outer", 0, 0);
        set.span_enter("inner", 100, 1);
        set.span_exit("inner", 300, 4, &mut reg);
        // Unmatched exit: ignored.
        set.span_exit("nope", 350, 5, &mut reg);
        // Repeat the inner span.
        set.span_enter("inner", 400, 6);
        set.span_exit("inner", 450, 7, &mut reg);
        set.span_exit("outer", 1_000, 10, &mut reg);

        let s = |m: &str, n: &str| Key::of(m, &[("span", n)]);
        assert_eq!(reg.counter(&s("span_count", "inner")), 2);
        assert_eq!(reg.counter(&s("span_sim_ps_total", "inner")), 250);
        assert_eq!(reg.counter(&s("span_commands_total", "inner")), 4);
        assert_eq!(reg.counter(&s("span_count", "outer")), 1);
        assert_eq!(reg.counter(&s("span_sim_ps_total", "outer")), 1_000);
        assert_eq!(reg.counter(&s("span_count", "nope")), 0);
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut reg = Registry::new();
        let mut set = SpanSet::new();
        set.span_enter("dangling", 10, 2);
        set.finish(110, 12, &mut reg);
        let key = Key::of("span_sim_ps_total", &[("span", "dangling")]);
        assert_eq!(reg.counter(&key), 100);
    }
}
