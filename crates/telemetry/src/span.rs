//! Phase and span accounting over simulated time.
//!
//! A [`SpanSet`] turns a stream of phase/span markers (plus the current
//! simulated picosecond clock and command count at each marker) into
//! accumulated per-name metrics. It deliberately never reads the host
//! clock: spans measure *simulated* `Time` deltas and command counts,
//! so the resulting registry is byte-identical across machines and
//! runs. Compiling with the `host-clock` cargo feature additionally
//! records wall-clock nanoseconds per phase/span under `*_wall_ns_total`
//! keys — useful for real profiling, but those keys are then host- and
//! load-dependent, which is why the feature is off by default.
//!
//! Phases are flat (entering one ends the previous); spans nest and may
//! repeat. Unbalanced exits (an exit with no matching open span) are
//! ignored rather than panicking — instrumentation must never take down
//! a characterization.

use crate::registry::{Key, Registry};
use std::collections::BTreeMap;

/// One open phase or span: where (in simulated time / command count) it
/// began.
#[derive(Debug, Clone)]
struct Open {
    name: String,
    start_ps: u64,
    start_commands: u64,
    #[cfg(feature = "host-clock")]
    start_wall: std::time::Instant,
}

impl Open {
    fn new(name: &str, now_ps: u64, commands: u64) -> Open {
        Open {
            name: name.to_string(),
            start_ps: now_ps,
            start_commands: commands,
            #[cfg(feature = "host-clock")]
            start_wall: std::time::Instant::now(),
        }
    }

    /// Accumulates this interval into `reg` under `{prefix}_count`,
    /// `{prefix}_commands_total`, and `{prefix}_sim_ps_total`, labeled
    /// with the phase/span name.
    fn close_into(&self, prefix: &str, now_ps: u64, commands: u64, reg: &mut Registry) {
        let label = [(prefix, self.name.as_str())];
        reg.inc(Key::of(&format!("{prefix}_count"), &label), 1);
        reg.inc(
            Key::of(&format!("{prefix}_commands_total"), &label),
            commands.saturating_sub(self.start_commands),
        );
        reg.inc(
            Key::of(&format!("{prefix}_sim_ps_total"), &label),
            now_ps.saturating_sub(self.start_ps),
        );
        #[cfg(feature = "host-clock")]
        reg.inc(
            Key::of(&format!("{prefix}_wall_ns_total"), &label),
            u64::try_from(self.start_wall.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
}

/// Tracks the current phase and the stack of open spans, folding closed
/// intervals into a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    phase: Option<Open>,
    spans: Vec<Open>,
}

impl SpanSet {
    /// Creates an empty span set (no phase, no open spans).
    pub fn new() -> SpanSet {
        SpanSet::default()
    }

    /// The name of the current phase, if one is open.
    pub fn current_phase(&self) -> Option<&str> {
        self.phase.as_ref().map(|o| o.name.as_str())
    }

    /// Switches to phase `name`, closing the previous phase (if any)
    /// into `reg`.
    pub fn phase_enter(&mut self, name: &str, now_ps: u64, commands: u64, reg: &mut Registry) {
        if let Some(prev) = self.phase.take() {
            prev.close_into("phase", now_ps, commands, reg);
        }
        self.phase = Some(Open::new(name, now_ps, commands));
    }

    /// Opens a span named `name`. Spans nest and may repeat.
    pub fn span_enter(&mut self, name: &str, now_ps: u64, commands: u64) {
        self.spans.push(Open::new(name, now_ps, commands));
    }

    /// Closes the innermost open span named `name` into `reg`. An exit
    /// with no matching open span is ignored.
    pub fn span_exit(&mut self, name: &str, now_ps: u64, commands: u64, reg: &mut Registry) {
        if let Some(i) = self.spans.iter().rposition(|s| s.name == name) {
            let open = self.spans.remove(i);
            open.close_into("span", now_ps, commands, reg);
        }
    }

    /// Closes the current phase and every still-open span into `reg`.
    /// Call once at end of run so trailing intervals are not lost.
    pub fn finish(&mut self, now_ps: u64, commands: u64, reg: &mut Registry) {
        if let Some(phase) = self.phase.take() {
            phase.close_into("phase", now_ps, commands, reg);
        }
        while let Some(span) = self.spans.pop() {
            span.close_into("span", now_ps, commands, reg);
        }
    }
}

/// Accumulated totals for one phase or span name, read back out of a
/// registry by [`span_rollup`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTotals {
    /// How many times the interval closed.
    pub count: u64,
    /// Total simulated picoseconds across all closures.
    pub sim_ps: u64,
    /// Total commands issued across all closures.
    pub commands: u64,
}

/// Reads every `{prefix}_*` counter [`SpanSet`] wrote into `reg` back
/// out as per-name totals, keyed by phase/span name in sorted order.
/// `prefix` is `"phase"` or `"span"` — the export hook profilers and
/// report writers use to fold deterministic span telemetry into their
/// own (host-time) view without re-parsing marker streams.
pub fn span_rollup(reg: &Registry, prefix: &str) -> BTreeMap<String, SpanTotals> {
    let count_key = format!("{prefix}_count");
    let sim_key = format!("{prefix}_sim_ps_total");
    let commands_key = format!("{prefix}_commands_total");
    let mut out: BTreeMap<String, SpanTotals> = BTreeMap::new();
    for (key, value) in reg.counters() {
        let Some(name) = key
            .labels()
            .iter()
            .find(|(k, _)| k == prefix)
            .map(|(_, v)| v.clone())
        else {
            continue;
        };
        let totals = out.entry(name).or_default();
        match key.metric() {
            m if m == count_key => totals.count += value,
            m if m == sim_key => totals.sim_ps += value,
            m if m == commands_key => totals.commands += value,
            _ => {}
        }
    }
    // Keep only names that actually closed at least once — a stray
    // label on an unrelated counter must not invent a span.
    out.retain(|_, t| t.count > 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_flat_and_accumulate_sim_time_and_commands() {
        let mut reg = Registry::new();
        let mut set = SpanSet::new();
        set.phase_enter("structure", 0, 0, &mut reg);
        assert_eq!(set.current_phase(), Some("structure"));
        set.phase_enter("power", 1_000, 10, &mut reg);
        set.finish(5_000, 25, &mut reg);
        assert_eq!(set.current_phase(), None);

        let p = |m: &str, n: &str| Key::of(m, &[("phase", n)]);
        assert_eq!(reg.counter(&p("phase_count", "structure")), 1);
        assert_eq!(reg.counter(&p("phase_sim_ps_total", "structure")), 1_000);
        assert_eq!(reg.counter(&p("phase_commands_total", "structure")), 10);
        assert_eq!(reg.counter(&p("phase_sim_ps_total", "power")), 4_000);
        assert_eq!(reg.counter(&p("phase_commands_total", "power")), 15);
    }

    #[test]
    fn spans_nest_repeat_and_tolerate_unbalanced_exits() {
        let mut reg = Registry::new();
        let mut set = SpanSet::new();
        set.span_enter("outer", 0, 0);
        set.span_enter("inner", 100, 1);
        set.span_exit("inner", 300, 4, &mut reg);
        // Unmatched exit: ignored.
        set.span_exit("nope", 350, 5, &mut reg);
        // Repeat the inner span.
        set.span_enter("inner", 400, 6);
        set.span_exit("inner", 450, 7, &mut reg);
        set.span_exit("outer", 1_000, 10, &mut reg);

        let s = |m: &str, n: &str| Key::of(m, &[("span", n)]);
        assert_eq!(reg.counter(&s("span_count", "inner")), 2);
        assert_eq!(reg.counter(&s("span_sim_ps_total", "inner")), 250);
        assert_eq!(reg.counter(&s("span_commands_total", "inner")), 4);
        assert_eq!(reg.counter(&s("span_count", "outer")), 1);
        assert_eq!(reg.counter(&s("span_sim_ps_total", "outer")), 1_000);
        assert_eq!(reg.counter(&s("span_count", "nope")), 0);
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut reg = Registry::new();
        let mut set = SpanSet::new();
        set.span_enter("dangling", 10, 2);
        set.finish(110, 12, &mut reg);
        let key = Key::of("span_sim_ps_total", &[("span", "dangling")]);
        assert_eq!(reg.counter(&key), 100);
    }

    #[test]
    fn rollup_reads_totals_back_out_per_name() {
        let mut reg = Registry::new();
        let mut set = SpanSet::new();
        set.phase_enter("structure", 0, 0, &mut reg);
        set.span_enter("probe", 100, 1);
        set.span_exit("probe", 300, 5, &mut reg);
        set.span_enter("probe", 400, 6);
        set.span_exit("probe", 500, 8, &mut reg);
        set.finish(1_000, 20, &mut reg);

        let spans = span_rollup(&reg, "span");
        assert_eq!(spans.len(), 1);
        let probe = &spans["probe"];
        assert_eq!(
            *probe,
            SpanTotals {
                count: 2,
                sim_ps: 300,
                commands: 6,
            }
        );

        let phases = span_rollup(&reg, "phase");
        assert_eq!(phases["structure"].count, 1);
        assert_eq!(phases["structure"].sim_ps, 1_000);
        assert_eq!(phases["structure"].commands, 20);
    }

    #[test]
    fn rollup_of_an_empty_registry_is_empty() {
        assert!(span_rollup(&Registry::new(), "span").is_empty());
        // Unrelated counters with no prefix label don't invent spans.
        let mut reg = Registry::new();
        reg.inc(Key::name("commands_total"), 5);
        assert!(span_rollup(&reg, "span").is_empty());
    }
}
