//! The headline integration test: every observation O1–O14 must hold on
//! the full-size simulated Mfr. A ×4 2016 device, produced purely through
//! the command interface.
//!
//! This is the reproduction's equivalent of the paper's artifact run; it
//! takes a few minutes in debug builds.

use dramscope::core::observations::ObservationSuite;
use dramscope::core::retention_probe::PolarityVerdict;

#[test]
fn observations_o1_to_o14_hold() {
    let mut suite = ObservationSuite::new(2024);
    let reports = suite.run_all().expect("suite must run");
    assert_eq!(reports.len(), 14);
    let mut failures = Vec::new();
    for r in &reports {
        println!("{r}");
        if !r.passed {
            failures.push(r.id);
        }
    }
    assert!(failures.is_empty(), "failed observations: {failures:?}");
}

#[test]
fn supplementary_polarity_and_coupled_attack() {
    let mut suite = ObservationSuite::new(77);
    assert_eq!(
        suite.polarity().expect("retention probe"),
        PolarityVerdict::AllTrue,
        "Mfr. A uses only true-cells (§III-B)"
    );
    let outcome = suite.coupled_attack_probe().expect("coupled attack probe");
    assert!(
        outcome.victim_flips > 0,
        "the §VI coupled split attack must flip bits on an unprotected chip"
    );
}
