//! Cross-crate determinism contract for bank-sharded characterization:
//! the sharded path must produce byte-identical output — dossier digest,
//! metrics snapshot bytes, and recorded trace bytes — for `shards = 1`,
//! `shards = n_banks`, and the strictly serial reference, regardless of
//! worker scheduling.
//!
//! The fast tests cover one DDR4-style profile (`test_small`) and one
//! HBM2 profile (`test_small_hbm2`) and run in the tier-1 debug suite.
//! The `#[ignore]`d exhaustive test extends the digest contract to every
//! bundled Table I preset; CI runs it in release
//! (`cargo test --release --test sharded -- --ignored`).

use dramscope::core::dossier::CharacterizeOptions;
use dramscope::core::shard::{self, ShardConfig};
use dramscope::core::{fleet, trace_run};
use dramscope::sim::{ChipProfile, Time};

fn small_opts() -> CharacterizeOptions {
    CharacterizeOptions {
        scan_rows: 129,
        with_swizzle: false,
        probe_range: (44, 60),
        retention_wait: Time::from_ms(120_000),
    }
}

/// One DDR4-style and one HBM2 profile, with the bank counts the
/// shard-count sweep exercises.
fn small_profiles() -> Vec<ChipProfile> {
    vec![ChipProfile::test_small(), ChipProfile::test_small_hbm2()]
}

#[test]
fn sharded_output_is_byte_identical_across_shard_counts_and_serial() {
    for profile in small_profiles() {
        let n_banks = profile.banks as usize;
        let serial = shard::characterize_sharded_serial(&profile, 77, small_opts());
        assert!(serial.all_ok(), "{}", serial.table());
        let serial_dossier = serial.dossier().unwrap();
        let serial_metrics = serial.merged_metrics().to_json_lines();

        for shards in [1, n_banks] {
            let report =
                shard::characterize_sharded(&profile, 77, small_opts(), ShardConfig { shards });
            assert!(report.all_ok(), "{}", report.table());
            let dossier = report.dossier().unwrap();
            assert_eq!(
                dossier.to_string(),
                serial_dossier.to_string(),
                "{}: rendered dossier must not depend on shards={shards}",
                profile.label()
            );
            assert_eq!(dossier.digest(), serial_dossier.digest());
            assert_eq!(
                report.merged_metrics().to_json_lines(),
                serial_metrics,
                "{}: metrics snapshot must not depend on shards={shards}",
                profile.label()
            );
        }
    }
}

#[test]
fn sharded_trace_bytes_do_not_depend_on_shard_count() {
    for profile in small_profiles() {
        let n_banks = profile.banks as usize;
        let (dossier_one, trace_one, metrics_one) = trace_run::record_characterization_sharded(
            &profile,
            77,
            small_opts(),
            ShardConfig { shards: 1 },
        )
        .unwrap();
        let (dossier_all, trace_all, metrics_all) = trace_run::record_characterization_sharded(
            &profile,
            77,
            small_opts(),
            ShardConfig { shards: n_banks },
        )
        .unwrap();
        assert_eq!(dossier_one.digest(), dossier_all.digest());
        assert_eq!(
            trace_one.to_bytes(),
            trace_all.to_bytes(),
            "{}: trace bytes must not depend on the shard count",
            profile.label()
        );
        assert_eq!(metrics_one.to_json_lines(), metrics_all.to_json_lines());

        // The recorded trace replays bit-for-bit back into the dossier.
        let (replayed, replayed_metrics) =
            trace_run::replay_characterization_sharded(&trace_all).unwrap();
        assert_eq!(replayed.digest(), dossier_all.digest());
        assert_eq!(
            replayed_metrics.to_json_lines(),
            metrics_all.to_json_lines()
        );
    }
}

/// The two-level fleet scheduler obeys the same contract: flattening
/// `(profile, bank)` tasks onto one shared pool regroups into exactly
/// the per-device serial sharded reference.
#[test]
fn sharded_fleet_regroups_to_the_serial_reference() {
    let opts = small_opts();
    let jobs: Vec<fleet::FleetJob> = small_profiles()
        .into_iter()
        .map(|profile| fleet::FleetJob { profile, opts })
        .collect();
    let report = fleet::run_fleet_sharded(&jobs, 77, fleet::FleetConfig { workers: 3 });
    assert!(report.all_ok(), "{}", report.table());
    assert_eq!(report.tasks, 2 + 4);
    for (job, sharded) in jobs.iter().zip(&report.profiles) {
        let seed = fleet::derive_seed(77, &job.profile.label());
        let reference = shard::characterize_sharded_serial(&job.profile, seed, job.opts);
        assert_eq!(
            sharded.dossier().unwrap().to_string(),
            reference.dossier().unwrap().to_string()
        );
        assert_eq!(
            sharded.merged_metrics().to_json_lines(),
            reference.merged_metrics().to_json_lines()
        );
    }
}

/// Exhaustive digest contract over every bundled Table I preset, with
/// each preset's own interior probe range. Expensive (every bank of
/// every preset characterizes twice), so it is `#[ignore]`d from the
/// debug tier-1 suite; CI runs it in release.
#[test]
#[ignore = "exhaustive; run in release: cargo test --release --test sharded -- --ignored"]
fn sharded_matches_serial_for_every_bundled_profile() {
    for job in fleet::table1_jobs() {
        let label = job.profile.label();
        let serial = shard::characterize_sharded_serial(&job.profile, 77, job.opts);
        assert!(serial.all_ok(), "{label}: {}", serial.table());
        let sharded =
            shard::characterize_sharded(&job.profile, 77, job.opts, ShardConfig::default());
        assert!(sharded.all_ok(), "{label}: {}", sharded.table());
        assert_eq!(
            sharded.dossier().unwrap().digest(),
            serial.dossier().unwrap().digest(),
            "{label}: sharded digest diverged from serial"
        );
        assert_eq!(
            sharded.merged_metrics().to_json_lines(),
            serial.merged_metrics().to_json_lines(),
            "{label}: merged metrics diverged from serial"
        );
    }
}
