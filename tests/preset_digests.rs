//! Pins the characterization output of every bundled preset against a
//! committed fixture (`tests/golden/preset_digests.json`).
//!
//! Each fixture line records, for one `(profile, seed 77)` pair, the
//! FNV-1a 64 digest of the rendered dossier and of the metrics snapshot
//! bytes. Any change to the device model that perturbs physics, command
//! scheduling, or metrics vocabulary shows up here as a digest mismatch —
//! this is the before/after byte-identity contract that allowed the chip
//! hot path to be rewritten on flat state without a physics review.
//!
//! The fast test covers the four small test profiles and runs in the
//! tier-1 debug suite; the `#[ignore]`d test extends the pin to all 16
//! Table I presets and runs in release from the scheduled perf workflow.
//!
//! Regenerate after an *intentional* model change with:
//!
//! ```text
//! DRAMSCOPE_BLESS=1 cargo test --release --test preset_digests -- --ignored bless
//! ```

use dramscope::core::dossier::{characterize_instrumented, CharacterizeOptions};
use dramscope::core::fleet;
use dramscope::sim::{ChipProfile, Time};
use std::path::PathBuf;

const SEED: u64 = 77;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("preset_digests.json")
}

fn small_opts() -> CharacterizeOptions {
    CharacterizeOptions {
        scan_rows: 129,
        with_swizzle: false,
        probe_range: (44, 60),
        retention_wait: Time::from_ms(120_000),
    }
}

/// The fast PR-tier subset: one profile per small-geometry family.
fn fast_jobs() -> Vec<(ChipProfile, CharacterizeOptions)> {
    vec![
        (ChipProfile::test_small(), small_opts()),
        (ChipProfile::test_small_coupled(), small_opts()),
        (ChipProfile::test_small_interleaved(), small_opts()),
        (ChipProfile::test_small_hbm2(), small_opts()),
    ]
}

/// All 16 Table I presets with their interior probe ranges.
fn table1_jobs() -> Vec<(ChipProfile, CharacterizeOptions)> {
    fleet::table1_jobs()
        .into_iter()
        .map(|job| (job.profile, job.opts))
        .collect()
}

/// One fixture line: label plus both digests, formatted by hand so the
/// file stays dependency-free and byte-stable.
fn digest_line(profile: &ChipProfile, opts: CharacterizeOptions) -> String {
    let (dossier, _stats, metrics) =
        characterize_instrumented(profile, SEED, opts, None).expect("characterize");
    let metrics_fnv = dramscope::trace::fnv1a_64(metrics.to_json_lines().as_bytes());
    format!(
        "{{\"label\":\"{}\",\"dossier\":\"{:#018x}\",\"metrics\":\"{:#018x}\"}}",
        profile.label(),
        dossier.digest(),
        metrics_fnv
    )
}

fn fixture_lines() -> Vec<String> {
    let raw = std::fs::read_to_string(fixture_path()).expect(
        "tests/golden/preset_digests.json missing; regenerate with \
         DRAMSCOPE_BLESS=1 cargo test --release --test preset_digests -- --ignored bless",
    );
    raw.lines().map(str::to_owned).collect()
}

fn assert_pinned(jobs: Vec<(ChipProfile, CharacterizeOptions)>) {
    let fixture = fixture_lines();
    for (profile, opts) in jobs {
        let line = digest_line(&profile, opts);
        let label = profile.label();
        let pinned = fixture
            .iter()
            .find(|l| l.contains(&format!("\"label\":\"{label}\"")))
            .unwrap_or_else(|| panic!("{label}: no fixture line; re-bless the fixture"));
        assert_eq!(
            &line, pinned,
            "{label}: characterization digests diverged from the committed fixture"
        );
    }
}

#[test]
fn small_preset_digests_match_fixture() {
    assert_pinned(fast_jobs());
}

/// Exhaustive pin over every bundled Table I preset. Expensive, so it is
/// `#[ignore]`d from the debug tier-1 suite; the scheduled perf workflow
/// runs it in release.
#[test]
#[ignore = "exhaustive; run in release: cargo test --release --test preset_digests -- --ignored"]
fn table1_preset_digests_match_fixture() {
    assert_pinned(table1_jobs());
}

/// Regenerates the fixture. Only writes when `DRAMSCOPE_BLESS` is set,
/// so an accidental `--include-ignored` run cannot silently re-pin.
#[test]
#[ignore = "fixture generator; set DRAMSCOPE_BLESS=1 to write"]
fn bless_fixture() {
    if std::env::var_os("DRAMSCOPE_BLESS").is_none() {
        eprintln!("DRAMSCOPE_BLESS not set; refusing to rewrite the fixture");
        return;
    }
    let mut lines = Vec::new();
    for (profile, opts) in fast_jobs().into_iter().chain(table1_jobs()) {
        lines.push(digest_line(&profile, opts));
    }
    let mut body = lines.join("\n");
    body.push('\n');
    std::fs::write(fixture_path(), body).expect("write fixture");
}
