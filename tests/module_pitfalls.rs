//! Integration: the §III-C mapping pitfalls at module level — naive
//! analysis produces the classic artifacts; aware analysis is exact.

use dramscope::core::mapping::{
    aware_expected_victims, hammer_and_scan_module, naive_pattern_per_chip, ModuleTestbed,
};
use dramscope::module::{CacheLine, Dimm};
use dramscope::sim::{ChipProfile, Time};
use std::collections::BTreeSet;

fn module() -> ModuleTestbed {
    ModuleTestbed::new(Dimm::new(ChipProfile::test_small(), 4, 123))
}

#[test]
fn rcd_inversion_produces_nonadjacent_artifact_and_aware_analysis_resolves_it() {
    let mut mtb = module();
    let aggressor = 103; // +1 carries across the uninverted low bits
    let expected = aware_expected_victims(mtb.dimm(), aggressor);
    assert!(
        expected.iter().any(|&r| r.abs_diff(aggressor) > 8),
        "the aware prediction itself contains a far victim: {expected:?}"
    );
    let mut scan: Vec<u32> = (aggressor - 4..aggressor + 5).collect();
    scan.extend(expected.iter().copied());
    scan.sort_unstable();
    scan.dedup();
    let flips = hammer_and_scan_module(&mut mtb, 0, aggressor, &scan, 1_800_000).unwrap();
    let hit: BTreeSet<u32> = flips.iter().map(|f| f.row).collect();
    assert!(
        hit.iter().any(|&r| r.abs_diff(aggressor) > 8),
        "naive scan must show a non-adjacent victim; got {hit:?}"
    );
    assert!(
        hit.is_subset(&expected),
        "every flip must be explained by the aware mapping: {hit:?} vs {expected:?}"
    );
}

#[test]
fn dq_twists_distort_uniform_patterns_and_module_data_still_round_trips() {
    let mtb = module();
    let per_chip = naive_pattern_per_chip(mtb.dimm(), 0x5555);
    assert!(per_chip.iter().any(|&p| p != per_chip[0]));

    let mut mtb = module();
    let mut line = CacheLine::default();
    for beat in 0..8 {
        line.0[beat] = 0x9A3C ^ (beat as u64);
    }
    mtb.write_row(0, 40, line).unwrap();
    let got = mtb.read_row(0, 40).unwrap();
    for l in got {
        for beat in 0..8 {
            assert_eq!(l.0[beat] & 0xFFFF, line.0[beat] & 0xFFFF);
        }
    }
}

#[test]
fn refresh_broadcast_keeps_all_chips_alive() {
    let mut mtb = module();
    mtb.write_row(0, 9, CacheLine::splat(u64::MAX)).unwrap();
    // 10 simulated seconds with periodic refresh: no retention decay.
    for _ in 0..160 {
        mtb.wait(Time::from_ms(64));
        mtb.refresh().unwrap();
    }
    let got = mtb.read_row(0, 9).unwrap();
    assert!(got
        .iter()
        .all(|l| l.0.iter().all(|&b| b & 0xFFFF == 0xFFFF)));
}

#[test]
fn x8_and_hbm2_modules_assemble_and_round_trip() {
    use dramscope::sim::Time;
    // x8 RDIMM: 8 chips fill the 64-bit bus.
    let d8 = Dimm::rdimm(ChipProfile::mfr_b_x8_2017(), 5);
    assert_eq!(d8.chip_count(), 8);
    let mut m8 = ModuleTestbed::new(d8);
    m8.write_row(0, 33, CacheLine::splat(0x0123_4567_89AB_CDEF))
        .unwrap();
    let got = m8.read_row(0, 33).unwrap();
    assert!(got
        .iter()
        .all(|l| l.0.iter().all(|&b| b == 0x0123_4567_89AB_CDEF)));

    // HBM2: a single wide device delivering its 64-bit RD_data in one
    // beat (only beat 0 of the line is meaningful).
    let dh = Dimm::rdimm(ChipProfile::hbm2_mfr_a(), 5);
    assert_eq!(dh.chip_count(), 1);
    let mut mh = ModuleTestbed::new(dh);
    mh.write_row(0, 40, CacheLine::splat(0xFEED_F00D_DEAD_BEEF))
        .unwrap();
    let got = mh.read_row(0, 40).unwrap();
    assert!(got.iter().all(|l| l.0[0] == 0xFEED_F00D_DEAD_BEEF));
    let _ = Time::ZERO;
}
