//! Property-based tests over the core data structures and physical
//! invariants of the simulator.
//!
//! Formerly driven by `proptest`; now exercised over deterministic
//! [`StreamRng`] case streams so the suite builds offline (no external
//! dev-dependencies) and every failure reproduces exactly. Each test
//! sweeps the same property across many pseudo-random cases derived
//! from a fixed seed.

use dramscope::core::patterns::{physical_image, writer_for_physical, CellLayout};
use dramscope::core::protect::Scrambler;
use dramscope::module::{AddressMapping, DramCoord, PinPermutation};
use dramscope::sim::rng::StreamRng;
use dramscope::sim::rowdata::RowBits;
use dramscope::sim::{
    BankLayout, ChipProfile, DramChip, LogicalRow, RowRemap, SwizzleMap, SwizzleStyle, Time,
    Wordline,
};
use dramscope::testbed::Testbed;

/// Every swizzle style is a bijection between (col, bit) and bitlines.
#[test]
fn swizzle_is_bijective() {
    for style in [
        SwizzleStyle::VendorA,
        SwizzleStyle::VendorB,
        SwizzleStyle::VendorC,
        SwizzleStyle::Identity,
    ] {
        for mats_pow in 2u32..5 {
            for k_pow in 1u32..4 {
                let mats = 1 << mats_pow;
                let k = 1 << k_pow;
                let rd_bits = mats * k;
                if rd_bits > 64 {
                    continue;
                }
                if style == SwizzleStyle::VendorA && rd_bits % (2 * mats) != 0 {
                    continue;
                }
                let mat_width = 64;
                let row_bits = mats * mat_width;
                let s = SwizzleMap::new(style, rd_bits, row_bits, mat_width);
                let mut seen = vec![false; row_bits as usize];
                for col in 0..row_bits / rd_bits {
                    for bit in 0..rd_bits {
                        let bl = s.bitline_of(col, bit);
                        assert!(!seen[bl.0 as usize], "{style:?} reuses bitline {bl}");
                        seen[bl.0 as usize] = true;
                        assert_eq!(s.rd_bit_of(bl), (col, bit));
                    }
                }
                assert!(seen.iter().all(|&v| v), "{style:?} misses bitlines");
            }
        }
    }
}

/// RowBits set/get/toggle/invert behave like a plain bool vector.
#[test]
fn rowbits_matches_reference_model() {
    let mut rng = StreamRng::new(0x0B17_5001);
    for _case in 0..64 {
        let len = 1 + rng.next_below(299) as u32;
        let mut bits = RowBits::zeros(len);
        let mut model = vec![false; len as usize];
        for _ in 0..rng.next_below(64) {
            let i = rng.next_below(u64::from(len)) as u32;
            match rng.next_below(3) {
                0 => {
                    bits.set(i, true);
                    model[i as usize] = true;
                }
                1 => {
                    bits.set(i, false);
                    model[i as usize] = false;
                }
                _ => {
                    let v = bits.toggle(i);
                    model[i as usize] = !model[i as usize];
                    assert_eq!(v, model[i as usize]);
                }
            }
        }
        for i in 0..len {
            assert_eq!(bits.get(i), model[i as usize]);
        }
        assert_eq!(
            bits.count_ones() as usize,
            model.iter().filter(|&&b| b).count()
        );
        let inv = bits.inverted();
        for i in 0..len {
            assert_eq!(inv.get(i), !model[i as usize]);
        }
    }
}

/// Bank layouts tile exactly and classify every wordline consistently.
#[test]
fn bank_layout_partitions_wordlines() {
    let mut rng = StreamRng::new(0x0BA7_C0DE);
    for _case in 0..32 {
        let h1 = 8 + rng.next_below(56) as u32;
        let h2 = 8 + rng.next_below(56) as u32;
        let blocks = 1 + rng.next_below(3) as u32;
        let block = h1 + h2;
        let segment = block * blocks;
        let total = segment * 2;
        let layout = BankLayout::build(total, segment, &[h1, h2]);
        let mut covered = 0;
        for s in 0..layout.subarray_count() {
            let info = layout.info(dramscope::sim::SubarrayId(s));
            covered += info.height;
            for wl in info.start_wl..info.end_wl() {
                assert_eq!(layout.subarray_of(Wordline(wl)).0, s);
                assert_eq!(layout.local_index(Wordline(wl)), wl - info.start_wl);
            }
        }
        assert_eq!(covered, total);
    }
}

/// The MC address mapping is a bijection.
#[test]
fn mc_mapping_round_trips() {
    let mut rng = StreamRng::new(0x03C0_3A99);
    for _case in 0..256 {
        let col_bits = 1 + rng.next_below(4) as u32;
        let bank_bits = 1 + rng.next_below(4) as u32;
        let row_bits = 4 + rng.next_below(8) as u32;
        let hash = rng.next_below(2) == 1;
        let m = AddressMapping::new(col_bits, bank_bits, row_bits, hash);
        let coord = DramCoord {
            bank: rng.next_u64() as u32 & ((1 << bank_bits) - 1),
            row: rng.next_u64() as u32 & ((1 << row_bits) - 1),
            col: rng.next_u64() as u32 & ((1 << col_bits) - 1),
        };
        assert_eq!(m.decompose(m.compose(coord)), coord);
    }
}

/// DQ permutations invert exactly for every position and width.
#[test]
fn dq_twists_invert() {
    let mut rng = StreamRng::new(0x00D9_7157);
    for pos in 0u32..16 {
        for pins_pow in 2u32..4 {
            let pins = 1u32 << pins_pow;
            let p = PinPermutation::for_chip_position(pos, pins);
            for _case in 0..16 {
                let beat = rng.next_u64() & ((1 << pins) - 1);
                assert_eq!(p.chip_to_module_beat(p.module_to_chip_beat(beat)), beat);
            }
        }
    }
}

/// Internal row remaps are involutions that stay within 8-blocks.
#[test]
fn remap_is_a_block_local_involution() {
    let mut rng = StreamRng::new(0x0004_E3A9);
    for case in 0..512 {
        // Sweep low rows exhaustively, then sample the full range.
        let row = if case < 64 {
            case
        } else {
            rng.next_below(100_000) as u32
        };
        for remap in [RowRemap::Identity, RowRemap::MfrA] {
            let p = remap.to_physical(LogicalRow(row));
            assert_eq!(remap.to_logical(p), LogicalRow(row));
            assert_eq!(p.0 / 8, row / 8);
        }
    }
}

/// Scramblers are involutions.
#[test]
fn scrambler_round_trips() {
    let mut rng = StreamRng::new(0x5C3A_3B1E);
    for _case in 0..128 {
        let key = rng.next_u64();
        let row = rng.next_u64() as u32;
        let col = rng.next_below(256) as u32;
        let data = rng.next_u64();
        for s in [Scrambler::row_keyed(key), Scrambler::row_col_keyed(key)] {
            assert_eq!(s.apply(row, col, s.apply(row, col, data)), data);
        }
    }
}

/// The on-die ECC codec corrects every single-bit error of every word.
#[test]
fn ecc_corrects_all_single_errors() {
    use dramscope::sim::ecc;
    let mut rng = StreamRng::new(0x0ECC_0001);
    for _case in 0..64 {
        let data = rng.next_u64() as u32;
        let parity = ecc::encode(data);
        for bit in 0..32 {
            let (fixed, what) = ecc::decode(data ^ (1 << bit), parity);
            assert_eq!(fixed, data);
            assert_eq!(what, ecc::Correction::DataBit(bit));
        }
        // Clean words stay clean.
        assert_eq!(ecc::decode(data, parity), (data, ecc::Correction::None));
    }
}

/// Double errors never decode as clean (SEC has distance 3).
#[test]
fn ecc_never_hides_double_errors() {
    use dramscope::sim::ecc;
    let mut rng = StreamRng::new(0x0ECC_0002);
    for _case in 0..16 {
        let data = rng.next_u64() as u32;
        let parity = ecc::encode(data);
        for a in 0..32u32 {
            for b in 0..32u32 {
                if a == b {
                    continue;
                }
                let (_, what) = ecc::decode(data ^ (1 << a) ^ (1 << b), parity);
                assert_ne!(what, ecc::Correction::None, "bits {a},{b} hidden");
            }
        }
    }
}

/// The TRR sampler respects its capacity under any observation stream.
#[test]
fn sampler_capacity_invariant() {
    use dramscope::sim::mitigation::Sampler;
    let mut rng = StreamRng::new(0x07A3_B1E5);
    for _case in 0..64 {
        let cap = 1 + rng.next_below(5) as usize;
        let mut s = Sampler::new(cap);
        for _ in 0..rng.next_below(128) {
            let wl = rng.next_below(64) as u32;
            let n = 1 + rng.next_below(999);
            s.observe(wl, n);
            assert!(s.len() <= cap);
        }
        let hot = s.take_hottest(cap + 2);
        assert!(hot.len() <= cap);
    }
}

/// Physical-pattern writers realize exactly the requested image.
#[test]
fn pattern_writer_round_trips() {
    let mut rng = StreamRng::new(0x09A7_7E38);
    for _case in 0..32 {
        let seed = rng.next_u64();
        let layout = CellLayout::from_swizzle(&SwizzleMap::vendor_a(32, 256, 64), 256, 64);
        let want = |p: u32| (seed >> (p % 64)) & 1 == 1;
        let cols = writer_for_physical(&layout, want);
        let img = physical_image(&layout, |c| cols[c as usize]);
        for p in 0..256 {
            assert_eq!(img[p as usize], want(p));
        }
    }
}

/// Chip-level write/read is the identity through arbitrary data, rows,
/// and columns (the full swizzle + storage path).
#[test]
fn chip_write_read_identity() {
    let mut rng = StreamRng::new(0x000C_41D0);
    for _case in 0..8 {
        let row = rng.next_below(2048) as u32;
        let pattern = rng.next_u64() & 0xFFFF_FFFF;
        let seed = rng.next_u64();
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), seed));
        tb.write_row_pattern(0, row, pattern).unwrap();
        let data = tb.read_row(0, row).unwrap();
        assert!(data.iter().all(|&d| d == pattern));
    }
}

/// Bitflips are monotone in activation count: everything that flips at
/// N1 also flips at N2 ≥ N1 (the weakest-cell threshold invariant).
#[test]
fn flips_are_monotone_in_dose() {
    let mut rng = StreamRng::new(0x000F_11B5);
    for _case in 0..4 {
        let seed = rng.next_u64();
        let flips_at = |n: u64| -> Vec<u64> {
            let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), seed));
            tb.write_row_pattern(0, 19, u64::MAX).unwrap();
            tb.write_row_pattern(0, 20, 0).unwrap();
            tb.hammer(0, 20, n).unwrap();
            tb.read_row(0, 19).unwrap()
        };
        let low = flips_at(1_500_000);
        let high = flips_at(3_000_000);
        for (l, h) in low.iter().zip(&high) {
            // A bit flipped at low dose (1→0) must also be flipped at high.
            assert_eq!((!l) & !h & 0xFFFF_FFFF, !l & 0xFFFF_FFFF);
        }
    }
}

/// Retention failures are monotone in wait time.
#[test]
fn retention_is_monotone_in_time() {
    let mut rng = StreamRng::new(0x3E7E_4710);
    for _case in 0..4 {
        let seed = rng.next_u64();
        let fails_at = |ms: u64| -> u32 {
            let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), seed));
            tb.write_row_pattern(0, 7, u64::MAX).unwrap();
            tb.wait(Time::from_ms(ms));
            tb.read_row(0, 7)
                .unwrap()
                .iter()
                .map(|d| (!d & 0xFFFF_FFFF).count_ones())
                .sum()
        };
        assert!(fails_at(60_000) <= fails_at(600_000));
    }
}

/// Arbitrary command streams never panic: every malformed request is
/// a typed `CommandError`, and time only moves forward.
#[test]
fn random_command_streams_never_panic() {
    use dramscope::sim::{Command, Time};
    let mut rng = StreamRng::new(0x0057_3EA8);
    for _case in 0..32 {
        let seed = rng.next_u64();
        let mut chip = DramChip::new(ChipProfile::test_small(), seed);
        let mut t = Time::ZERO;
        for _ in 0..(1 + rng.next_below(119)) {
            t += Time::from_ns(50);
            let bank = rng.next_below(3) as u32;
            let row = rng.next_below(2100) as u32;
            let col = rng.next_below(10) as u32;
            let data = rng.next_u64();
            let cmd = match rng.next_below(6) {
                0 => Command::Activate { bank, row },
                1 => Command::Precharge { bank },
                2 => Command::Read { bank, col },
                3 => Command::Write { bank, col, data },
                4 => Command::Refresh,
                _ => Command::Rfm { bank },
            };
            // Any outcome is fine; panics are not.
            let _ = chip.issue(cmd, t);
        }
        assert!(chip.now() <= t);
    }
}

/// Module-level command streams never panic either.
#[test]
fn random_module_streams_never_panic() {
    use dramscope::module::{CacheLine, Dimm, ModuleCommand};
    use dramscope::sim::Time;
    let mut rng = StreamRng::new(0x0030_0013);
    for _case in 0..16 {
        let seed = rng.next_u64();
        let mut dimm = Dimm::new(ChipProfile::test_small(), 4, seed);
        let mut t = Time::ZERO;
        for _ in 0..(1 + rng.next_below(59)) {
            t += Time::from_ns(50);
            let bank = rng.next_below(3) as u32;
            let row = rng.next_below(2100) as u32;
            let col = rng.next_below(10) as u32;
            let cmd = match rng.next_below(5) {
                0 => ModuleCommand::Activate { bank, row },
                1 => ModuleCommand::Precharge { bank },
                2 => ModuleCommand::Read { bank, col },
                3 => ModuleCommand::Write {
                    bank,
                    col,
                    data: CacheLine::splat(0xA5),
                },
                _ => ModuleCommand::Refresh,
            };
            let _ = dimm.issue(cmd, t);
        }
    }
}
