//! Property-based tests over the core data structures and physical
//! invariants of the simulator.

use dramscope::core::patterns::{physical_image, writer_for_physical, CellLayout};
use dramscope::core::protect::Scrambler;
use dramscope::module::{AddressMapping, DramCoord, PinPermutation};
use dramscope::sim::rowdata::RowBits;
use dramscope::sim::{
    BankLayout, ChipProfile, DramChip, LogicalRow, RowRemap, SwizzleMap, SwizzleStyle, Time,
    Wordline,
};
use dramscope::testbed::Testbed;
use proptest::prelude::*;

proptest! {
    /// Every swizzle style is a bijection between (col, bit) and bitlines.
    #[test]
    fn swizzle_is_bijective(
        style_idx in 0usize..4,
        mats_pow in 2u32..5,      // 4..16 MATs
        k_pow in 1u32..4,         // 2..8 bits per MAT
    ) {
        let mats = 1 << mats_pow;
        let k = 1 << k_pow;
        let rd_bits = mats * k;
        prop_assume!(rd_bits <= 64);
        let mat_width = 64;
        let row_bits = mats * mat_width;
        let style = [
            SwizzleStyle::VendorA,
            SwizzleStyle::VendorB,
            SwizzleStyle::VendorC,
            SwizzleStyle::Identity,
        ][style_idx];
        if style == SwizzleStyle::VendorA && rd_bits % (2 * mats) != 0 {
            return Ok(());
        }
        let s = SwizzleMap::new(style, rd_bits, row_bits, mat_width);
        let mut seen = vec![false; row_bits as usize];
        for col in 0..row_bits / rd_bits {
            for bit in 0..rd_bits {
                let bl = s.bitline_of(col, bit);
                prop_assert!(!seen[bl.0 as usize]);
                seen[bl.0 as usize] = true;
                prop_assert_eq!(s.rd_bit_of(bl), (col, bit));
            }
        }
        prop_assert!(seen.iter().all(|&v| v));
    }

    /// RowBits set/get/toggle/invert behave like a plain bool vector.
    #[test]
    fn rowbits_matches_reference_model(
        len in 1u32..300,
        ops in prop::collection::vec((0u32..300, 0u8..3), 0..64),
    ) {
        let mut bits = RowBits::zeros(len);
        let mut model = vec![false; len as usize];
        for (i, op) in ops {
            let i = i % len;
            match op {
                0 => { bits.set(i, true); model[i as usize] = true; }
                1 => { bits.set(i, false); model[i as usize] = false; }
                _ => { let v = bits.toggle(i); model[i as usize] = !model[i as usize];
                       prop_assert_eq!(v, model[i as usize]); }
            }
        }
        for i in 0..len {
            prop_assert_eq!(bits.get(i), model[i as usize]);
        }
        prop_assert_eq!(bits.count_ones() as usize, model.iter().filter(|&&b| b).count());
        let inv = bits.inverted();
        for i in 0..len {
            prop_assert_eq!(inv.get(i), !model[i as usize]);
        }
    }

    /// Bank layouts tile exactly and classify every wordline consistently.
    #[test]
    fn bank_layout_partitions_wordlines(
        h1 in 8u32..64,
        h2 in 8u32..64,
        blocks in 1u32..4,
    ) {
        let block = h1 + h2;
        let segment = block * blocks;
        let total = segment * 2;
        let layout = BankLayout::build(total, segment, &[h1, h2]);
        let mut covered = 0;
        for s in 0..layout.subarray_count() {
            let info = layout.info(dramscope::sim::SubarrayId(s));
            covered += info.height;
            for wl in info.start_wl..info.end_wl() {
                prop_assert_eq!(layout.subarray_of(Wordline(wl)).0, s);
                prop_assert_eq!(layout.local_index(Wordline(wl)), wl - info.start_wl);
            }
        }
        prop_assert_eq!(covered, total);
    }

    /// The MC address mapping is a bijection.
    #[test]
    fn mc_mapping_round_trips(
        col_bits in 1u32..5,
        bank_bits in 1u32..5,
        row_bits in 4u32..12,
        hash in any::<bool>(),
        bank in 0u32..16,
        row in 0u32..2048,
        col in 0u32..16,
    ) {
        let m = AddressMapping::new(col_bits, bank_bits, row_bits, hash);
        let coord = DramCoord {
            bank: bank & ((1 << bank_bits) - 1),
            row: row & ((1 << row_bits) - 1),
            col: col & ((1 << col_bits) - 1),
        };
        prop_assert_eq!(m.decompose(m.compose(coord)), coord);
    }

    /// DQ permutations invert exactly for every position and width.
    #[test]
    fn dq_twists_invert(pos in 0u32..16, pins_pow in 2u32..4, beat in any::<u64>()) {
        let pins = 1u32 << pins_pow;
        let p = PinPermutation::for_chip_position(pos, pins);
        let beat = beat & ((1 << pins) - 1);
        prop_assert_eq!(p.chip_to_module_beat(p.module_to_chip_beat(beat)), beat);
    }

    /// Internal row remaps are involutions that stay within 8-blocks.
    #[test]
    fn remap_is_a_block_local_involution(row in 0u32..100_000) {
        for remap in [RowRemap::Identity, RowRemap::MfrA] {
            let p = remap.to_physical(LogicalRow(row));
            prop_assert_eq!(remap.to_logical(p), LogicalRow(row));
            prop_assert_eq!(p.0 / 8, row / 8);
        }
    }

    /// Scramblers are involutions.
    #[test]
    fn scrambler_round_trips(key in any::<u64>(), row in any::<u32>(), col in 0u32..256, data in any::<u64>()) {
        for s in [Scrambler::row_keyed(key), Scrambler::row_col_keyed(key)] {
            prop_assert_eq!(s.apply(row, col, s.apply(row, col, data)), data);
        }
    }

    /// The on-die ECC codec corrects every single-bit error of every word.
    #[test]
    fn ecc_corrects_all_single_errors(data in any::<u32>(), bit in 0u32..32) {
        use dramscope::sim::ecc;
        let parity = ecc::encode(data);
        let (fixed, what) = ecc::decode(data ^ (1 << bit), parity);
        prop_assert_eq!(fixed, data);
        prop_assert_eq!(what, ecc::Correction::DataBit(bit));
        // Clean words stay clean.
        prop_assert_eq!(ecc::decode(data, parity), (data, ecc::Correction::None));
    }

    /// Double errors never decode as clean (SEC has distance 3).
    #[test]
    fn ecc_never_hides_double_errors(data in any::<u32>(), a in 0u32..32, b in 0u32..32) {
        use dramscope::sim::ecc;
        prop_assume!(a != b);
        let parity = ecc::encode(data);
        let (_, what) = ecc::decode(data ^ (1 << a) ^ (1 << b), parity);
        prop_assert_ne!(what, ecc::Correction::None);
    }

    /// The TRR sampler respects its capacity under any observation stream.
    #[test]
    fn sampler_capacity_invariant(
        cap in 1usize..6,
        stream in prop::collection::vec((0u32..64, 1u64..1000), 0..128),
    ) {
        use dramscope::sim::mitigation::Sampler;
        let mut s = Sampler::new(cap);
        for (wl, n) in stream {
            s.observe(wl, n);
            prop_assert!(s.len() <= cap);
        }
        let hot = s.take_hottest(cap + 2);
        prop_assert!(hot.len() <= cap);
    }

    /// Physical-pattern writers realize exactly the requested image.
    #[test]
    fn pattern_writer_round_trips(seed in any::<u64>()) {
        let layout = CellLayout::from_swizzle(&SwizzleMap::vendor_a(32, 256, 64), 256, 64);
        let want = |p: u32| (seed >> (p % 64)) & 1 == 1;
        let cols = writer_for_physical(&layout, want);
        let img = physical_image(&layout, |c| cols[c as usize]);
        for p in 0..256 {
            prop_assert_eq!(img[p as usize], want(p));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chip-level write/read is the identity through arbitrary data, rows,
    /// and columns (the full swizzle + storage path).
    #[test]
    fn chip_write_read_identity(
        row in 0u32..2048,
        pattern in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), seed));
        let pattern = pattern & 0xFFFF_FFFF;
        tb.write_row_pattern(0, row, pattern).unwrap();
        let data = tb.read_row(0, row).unwrap();
        prop_assert!(data.iter().all(|&d| d == pattern));
    }

    /// Bitflips are monotone in activation count: everything that flips at
    /// N1 also flips at N2 ≥ N1 (the weakest-cell threshold invariant).
    #[test]
    fn flips_are_monotone_in_dose(seed in any::<u64>()) {
        let flips_at = |n: u64| -> Vec<u64> {
            let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), seed));
            tb.write_row_pattern(0, 19, u64::MAX).unwrap();
            tb.write_row_pattern(0, 20, 0).unwrap();
            tb.hammer(0, 20, n).unwrap();
            tb.read_row(0, 19).unwrap()
        };
        let low = flips_at(1_500_000);
        let high = flips_at(3_000_000);
        for (l, h) in low.iter().zip(&high) {
            // A bit flipped at low dose (1→0) must also be flipped at high.
            prop_assert_eq!((!l) & !h & 0xFFFF_FFFF, !l & 0xFFFF_FFFF);
        }
    }

    /// Retention failures are monotone in wait time.
    #[test]
    fn retention_is_monotone_in_time(seed in any::<u64>()) {
        let fails_at = |ms: u64| -> u32 {
            let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), seed));
            tb.write_row_pattern(0, 7, u64::MAX).unwrap();
            tb.wait(Time::from_ms(ms));
            tb.read_row(0, 7).unwrap().iter().map(|d| (!d & 0xFFFF_FFFF).count_ones()).sum()
        };
        prop_assert!(fails_at(60_000) <= fails_at(600_000));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary command streams never panic: every malformed request is
    /// a typed `CommandError`, and time only moves forward.
    #[test]
    fn random_command_streams_never_panic(
        seed in any::<u64>(),
        cmds in prop::collection::vec((0u8..6, 0u32..3, 0u32..2100, 0u32..10, any::<u64>()), 1..120),
    ) {
        use dramscope::sim::{Command, DramChip, Time};
        let mut chip = DramChip::new(ChipProfile::test_small(), seed);
        let mut t = Time::ZERO;
        for (kind, bank, row, col, data) in cmds {
            t += Time::from_ns(50);
            let cmd = match kind {
                0 => Command::Activate { bank, row },
                1 => Command::Precharge { bank },
                2 => Command::Read { bank, col },
                3 => Command::Write { bank, col, data },
                4 => Command::Refresh,
                _ => Command::Rfm { bank },
            };
            // Any outcome is fine; panics are not.
            let _ = chip.issue(cmd, t);
        }
        prop_assert!(chip.now() <= t);
    }

    /// Module-level command streams never panic either.
    #[test]
    fn random_module_streams_never_panic(
        seed in any::<u64>(),
        cmds in prop::collection::vec((0u8..5, 0u32..3, 0u32..2100, 0u32..10), 1..60),
    ) {
        use dramscope::module::{CacheLine, Dimm, ModuleCommand};
        use dramscope::sim::Time;
        let mut dimm = Dimm::new(ChipProfile::test_small(), 4, seed);
        let mut t = Time::ZERO;
        for (kind, bank, row, col) in cmds {
            t += Time::from_ns(50);
            let cmd = match kind {
                0 => ModuleCommand::Activate { bank, row },
                1 => ModuleCommand::Precharge { bank },
                2 => ModuleCommand::Read { bank, col },
                3 => ModuleCommand::Write { bank, col, data: CacheLine::splat(0xA5) },
                _ => ModuleCommand::Refresh,
            };
            let _ = dimm.issue(cmd, t);
        }
    }
}
