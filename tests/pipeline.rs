//! Cross-crate integration: the full reverse-engineering pipeline against
//! a small chip with every hidden feature enabled (coupling, remapping,
//! edge subarrays), graded against ground truth.

use dramscope::core::hammer::{AibConfig, Attack};
use dramscope::core::retention_probe::{self, PolarityVerdict};
use dramscope::core::{remap_re, rowcopy_probe};
use dramscope::sim::{ChipProfile, DramChip, Time};
use dramscope::testbed::Testbed;

fn coupled_tb() -> Testbed {
    Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), 314))
}

#[test]
fn full_structural_discovery_matches_ground_truth() {
    let mut tb = coupled_tb();
    let gt = tb.chip().ground_truth();

    let heights = rowcopy_probe::subarray_heights(&mut tb, 0, 0..257).unwrap();
    let expect: Vec<u32> = gt.subarray_heights[..heights.len()].to_vec();
    assert_eq!(heights, expect, "subarray heights");

    let edge = rowcopy_probe::detect_edge_interval(&mut tb, 0).unwrap();
    assert_eq!(edge, Some(gt.edge_interval_wls), "edge interval");

    let coupled = rowcopy_probe::detect_coupled_rows(&mut tb, 0).unwrap();
    assert_eq!(coupled, gt.coupled_distance, "coupled distance");

    let inverted = rowcopy_probe::detect_copy_inversion(&mut tb, 0, 0).unwrap();
    assert_eq!(inverted, Some(true), "all-true chips copy inverted");
}

#[test]
fn remap_discovery_matches_ground_truth() {
    let mut tb = coupled_tb();
    let cfg = AibConfig {
        bank: 0,
        attack: Attack::Hammer { count: 1_500_000 },
    };
    assert_eq!(
        remap_re::detect_remap(&mut tb, cfg, &[12]).unwrap(),
        remap_re::RemapVerdict::Scrambled
    );
    let map = remap_re::adjacency_map(&mut tb, cfg, 8..24).unwrap();
    let chains = remap_re::physical_chains(&map);
    assert_eq!(chains.len(), 1);
    // Verify the chain is physically consecutive under ground truth.
    let gt = tb.chip().ground_truth();
    for w in chains[0].windows(2) {
        let a = gt.remap.to_physical(dramscope::sim::LogicalRow(w[0])).0;
        let b = gt.remap.to_physical(dramscope::sim::LogicalRow(w[1])).0;
        assert_eq!(
            a.abs_diff(b),
            1,
            "{} / {} not physically adjacent",
            w[0],
            w[1]
        );
    }
}

#[test]
fn polarity_discovery_distinguishes_vendor_schemes() {
    let mut all_true = Testbed::new(DramChip::new(ChipProfile::test_small(), 3));
    let v =
        retention_probe::classify_rows(&mut all_true, 0, &[3, 50], Time::from_ms(120_000)).unwrap();
    assert_eq!(
        retention_probe::polarity_scheme(&v),
        PolarityVerdict::AllTrue
    );

    let mut mixed = Testbed::new(DramChip::new(ChipProfile::test_small_interleaved(), 3));
    let v =
        retention_probe::classify_rows(&mut mixed, 0, &[3, 45], Time::from_ms(120_000)).unwrap();
    assert_eq!(retention_probe::polarity_scheme(&v), PolarityVerdict::Mixed);
}

#[test]
fn rowhammer_and_rowcopy_agree_on_subarray_boundaries() {
    // Cross-validation (§IV-C): the boundary found by RowCopy must also
    // block AIB.
    let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 5));
    let boundaries = rowcopy_probe::find_boundaries(&mut tb, 0, 1..120).unwrap();
    let first = boundaries[0];
    let cfg = AibConfig {
        bank: 0,
        attack: Attack::Hammer { count: 2_000_000 },
    };
    // Hammer the last row below the boundary: only its lower neighbour
    // flips.
    let adj = dramscope::core::hammer::adjacent_rows(&mut tb, cfg, first - 1, 3).unwrap();
    assert_eq!(
        adj,
        vec![first - 2],
        "AIB must not cross the RowCopy boundary"
    );
}

#[test]
fn coupled_rows_share_disturbance_and_refresh() {
    // Hammering row r must flip victims around the alias r + d too, and
    // refreshing the pin neighbours of either alias protects both.
    let mut tb = coupled_tb();
    let d = tb.chip().ground_truth().coupled_distance.unwrap();
    let aggr = 45; // interior; victims at pins 44/46 and 44+d/46+d.
    for v in [44, 46, 44 + d, 46 + d] {
        tb.write_row_pattern(0, v, u64::MAX).unwrap();
    }
    tb.write_row_pattern(0, aggr, 0).unwrap();
    tb.hammer(0, aggr, 4_000_000).unwrap();
    let mut flips_of = |v: u32| -> u32 {
        tb.read_row(0, v)
            .unwrap()
            .iter()
            .map(|w| (!w & 0xFFFF_FFFF).count_ones())
            .sum()
    };
    let near = flips_of(44) + flips_of(46);
    let far = flips_of(44 + d) + flips_of(46 + d);
    assert!(near > 0, "direct victims must flip");
    assert!(far > 0, "coupled-alias victims must flip too (O3 threat)");
}

#[test]
fn aib_trends_are_temperature_invariant_but_retention_is_not() {
    // Paper footnote 3: RowHammer/RowPress trends did not change with
    // temperature; retention is strongly temperature-dependent.
    let flips_at = |temp: f64| -> u32 {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 17));
        tb.set_temperature(temp);
        tb.write_row_pattern(0, 19, u64::MAX).unwrap();
        tb.write_row_pattern(0, 20, 0).unwrap();
        tb.hammer(0, 20, 2_000_000).unwrap();
        tb.read_row(0, 19)
            .unwrap()
            .iter()
            .map(|d| (!d & 0xFFFF_FFFF).count_ones())
            .sum()
    };
    let cold = flips_at(45.0);
    let hot = flips_at(85.0);
    assert_eq!(cold, hot, "AIB flips must not depend on temperature");

    let retention_fails = |temp: f64| -> u32 {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 17));
        tb.set_temperature(temp);
        tb.write_row_pattern(0, 9, u64::MAX).unwrap();
        tb.wait(Time::from_ms(120_000));
        tb.read_row(0, 9)
            .unwrap()
            .iter()
            .map(|d| (!d & 0xFFFF_FFFF).count_ones())
            .sum()
    };
    assert!(
        retention_fails(85.0) > retention_fails(45.0),
        "retention must accelerate with heat"
    );
}

#[test]
fn banks_are_isolated() {
    // Hammering in one bank must not disturb another bank's rows.
    let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 23));
    tb.write_row_pattern(0, 19, u64::MAX).unwrap();
    tb.write_row_pattern(1, 19, u64::MAX).unwrap();
    tb.write_row_pattern(0, 20, 0).unwrap();
    tb.hammer(0, 20, 4_000_000).unwrap();
    let flips_bank0: u32 = tb
        .read_row(0, 19)
        .unwrap()
        .iter()
        .map(|d| (!d & 0xFFFF_FFFF).count_ones())
        .sum();
    let flips_bank1: u32 = tb
        .read_row(1, 19)
        .unwrap()
        .iter()
        .map(|d| (!d & 0xFFFF_FFFF).count_ones())
        .sum();
    assert!(flips_bank0 > 0);
    assert_eq!(flips_bank1, 0, "cross-bank disturbance is impossible");
}

#[test]
fn paper_attack_program_runs_through_the_program_builder() {
    // The full hammer-measure flow expressed as a raw testbed program
    // (the SoftMC/DRAM-Bender idiom), including an RFM instruction.
    use dramscope::testbed::{Program, Testbed};
    let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small().with_trr(2), 23));
    let cols = tb.cols();
    let tras = tb.timing().tras;
    let mut p = Program::new();
    // Prepare victim and aggressor.
    p.act(0, 19);
    for c in 0..cols {
        p.wr(0, c, 0xFFFF_FFFF);
    }
    p.pre(0, tras);
    p.act(0, 20);
    for c in 0..cols {
        p.wr(0, c, 0);
    }
    p.pre(0, tras);
    // Hammer below the flip threshold, mitigate, hammer again.
    p.hammer(0, 20, 200_000, dramscope::testbed::HAMMER_ON_TIME);
    p.rfm(0);
    p.hammer(0, 20, 200_000, dramscope::testbed::HAMMER_ON_TIME);
    // Read the victim back.
    p.act(0, 19);
    for c in 0..cols {
        p.rd(0, c);
    }
    p.pre(0, tras);
    let out = tb.run(&p).unwrap();
    assert_eq!(out.reads.len(), cols as usize);
    assert!(
        out.reads.iter().all(|&d| d == 0xFFFF_FFFF),
        "RFM between sub-threshold bursts keeps the victim intact"
    );
}

#[test]
fn press_and_hammer_flip_mostly_disjoint_cells() {
    // §V-B: "the gradient for flipped cells overlapping with RowPress and
    // RowHammer converges to 0" — the two mechanisms live on different
    // gate/charge combinations.
    use dramscope::core::hammer::{self, AibConfig, Attack};
    let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 29));
    // Paper-standard sparse-flip doses over many victim rows.
    let press = AibConfig {
        bank: 0,
        attack: Attack::Press {
            count: 24_000,
            each_on: Time::from_ns(7_800),
        },
    };
    let hammer_cfg = AibConfig {
        bank: 0,
        attack: Attack::Hammer { count: 600_000 },
    };
    let pairs: Vec<(u32, u32)> = (66..102)
        .step_by(3)
        .chain((130..166).step_by(3))
        .map(|v| (v + 1, v))
        .collect();
    let mut cells = |cfg| -> std::collections::BTreeSet<(u32, u32, u32)> {
        let mut out = std::collections::BTreeSet::new();
        for &(aggr, vic) in &pairs {
            for r in hammer::measure_victim_flips(&mut tb, cfg, aggr, vic, &|_| u64::MAX, &|_| 0)
                .unwrap()
            {
                out.insert((vic, r.col, r.bit));
            }
        }
        out
    };
    let pressed = cells(press);
    let hammered = cells(hammer_cfg);
    assert!(!pressed.is_empty() && !hammered.is_empty());
    let overlap = pressed.intersection(&hammered).count();
    let overlap_frac = overlap as f64 / pressed.len().min(hammered.len()) as f64;
    assert!(
        overlap_frac < 0.2,
        "press and hammer populations must be mostly disjoint: {overlap_frac} \
         (press {}, hammer {})",
        pressed.len(),
        hammered.len()
    );
}
