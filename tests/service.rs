//! Facade-level smoke for the service layer: the `dramscope::service`
//! path works end to end, the daemon's cache identity agrees with the
//! content digests the `sim` crate exposes, and a served dossier is the
//! same bytes a direct library characterization produces.

use dramscope::core::characterize_instrumented;
use dramscope::service::{handle_connection, profiles, CacheStatus, JobSpec, Service};
use std::sync::{Arc, Mutex};

#[test]
fn served_dossier_matches_a_direct_library_run() {
    let (profile, opts) = profiles::named_job("test_small").expect("known profile");
    let (direct, _, _) =
        characterize_instrumented(&profile, 7, opts, None).expect("direct run succeeds");

    let service = Service::new(1);
    let spec = JobSpec {
        profile_name: "test_small".into(),
        profile: profile.clone(),
        seed: 7,
        opts,
        sharded: false,
    };
    let (served, status) = service.submit(&spec, None).expect("service run succeeds");
    assert_eq!(status, CacheStatus::Miss);
    assert_eq!(served.dossier, direct.to_string(), "same bytes either way");
    assert_eq!(served.digest, direct.digest());

    // The cache key is content-addressed over the sim-crate digests.
    let key = spec.key();
    assert_eq!(key.profile_digest, profile.digest());
    assert_eq!(key.geometry_digest, profile.bank_geometry().digest());

    let (again, status) = service.submit(&spec, None).expect("cached run succeeds");
    assert_eq!(status, CacheStatus::Hit);
    assert!(Arc::ptr_eq(&served, &again));
    service.shutdown();
}

#[test]
fn daemon_loop_is_reachable_through_the_facade() {
    let service = Service::new(1);
    let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
    let input = "{\"req\":\"stats\",\"id\":\"f\"}\nnot json\n";
    handle_connection(&service, input.as_bytes(), &writer).expect("transport ok");
    service.shutdown();
    let out = String::from_utf8(writer.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines[0].starts_with("{\"resp\":\"stats\""), "{}", lines[0]);
    assert!(lines[1].starts_with("{\"resp\":\"error\""), "{}", lines[1]);
}
