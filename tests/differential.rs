//! Cross-crate differential proof: the flat-state `DramChip` and the
//! frozen map-backed `RefChip` oracle (`dram-sim`'s `ref-model` feature)
//! must be indistinguishable through every observable boundary the stack
//! exposes — the serialized trace bytes a recorded run produces, the
//! rendered metrics snapshot, and the verified-replay path.
//!
//! The in-crate fuzz (`dram-sim`'s `difftest` module) compares results
//! call by call; this test goes one level up and compares the *artifacts*
//! two identically-driven runs leave behind, byte for byte. Combined with
//! `preset_digests` (dossier digests pinned before the refactor), a pass
//! means no consumer of any chip output can tell the implementations
//! apart.

use dramscope::sim::refchip::RefChip;
use dramscope::sim::rng::StreamRng;
use dramscope::sim::{ChipProfile, Command, DramChip, SharedMetrics, Tee, Time};
use dramscope::trace::{replay_on_chip, replay_on_chip_trusted, SharedRecorder, Trace};

/// One operation of the randomized workload. Timestamps for bursts are
/// resolved at apply time (a burst's end time feeds the next op), so ops
/// carry *gaps*, not absolute times.
#[derive(Debug, Clone, Copy)]
enum Op {
    Issue(Command),
    Burst { bank: u32, row: u32, count: u64 },
    RefreshWindow,
    SetTemperature(f64),
    Mark,
}

/// Builds the deterministic randomized workload for one profile/seed:
/// legal sequences, timing violations, out-of-range addresses, bursts,
/// refresh windows, temperature swings.
fn workload(profile: &ChipProfile, seed: u64) -> Vec<(Time, Op)> {
    let banks = u64::from(profile.banks);
    let rows = u64::from(profile.rows_per_bank);
    let cols = u64::from(profile.cols_per_row());
    let timing = profile.timing;
    let mut rng = StreamRng::new(seed ^ 0x7ACE_D1FF);
    let pick = |rng: &mut StreamRng, bound: u64| -> u32 {
        u32::try_from(rng.next_below(bound + 1)).expect("address fits u32")
    };

    let mut ops = Vec::with_capacity(300);
    for _ in 0..300 {
        let gap = match rng.next_below(6) {
            0 => Time::ZERO,
            1 => timing.tck,
            2 => timing.trcd,
            3 => timing.trp,
            4 => timing.tras + timing.trp,
            _ => Time::from_us(20),
        };
        let bank = pick(&mut rng, banks);
        let op = match rng.next_below(10) {
            0..=2 => Op::Issue(Command::Activate {
                bank,
                row: pick(&mut rng, rows),
            }),
            3..=4 => Op::Issue(Command::Read {
                bank,
                col: pick(&mut rng, cols),
            }),
            5 => Op::Issue(Command::Write {
                bank,
                col: pick(&mut rng, cols),
                data: rng.next_u64(),
            }),
            6..=7 => Op::Issue(Command::Precharge { bank }),
            8 => Op::Burst {
                bank,
                row: pick(&mut rng, rows - 1),
                count: rng.next_below(1_500) + 1,
            },
            _ => {
                if rng.next_below(4) == 0 {
                    Op::SetTemperature(20.0 + rng.next_unit() * 60.0)
                } else if rng.next_below(8) == 0 {
                    Op::Mark
                } else {
                    Op::RefreshWindow
                }
            }
        };
        ops.push((gap, op));
    }
    ops
}

/// The artifacts one identically-driven run leaves behind.
struct Recorded {
    trace: Trace,
    metrics_snapshot: String,
}

/// Applies the workload to either chip implementation. The two chips
/// expose the same entry-point surface but deliberately share no trait
/// (the oracle is a frozen verbatim copy), so the drive loop is a macro
/// instantiated once per type.
macro_rules! record_run {
    ($chip_ty:ty, $profile:expr, $seed:expr) => {{
        let profile: &ChipProfile = $profile;
        let seed: u64 = $seed;
        let recorder = SharedRecorder::unbounded();
        let metrics = SharedMetrics::new();
        let mut chip = <$chip_ty>::new(profile.clone(), seed);
        chip.set_sink(Box::new(Tee {
            first: recorder.sink(),
            second: metrics.clone(),
        }));
        let timing = *chip.timing();
        chip.mark("phase:differential");
        let mut t = Time::from_ns(100);
        for (gap, op) in workload(profile, seed) {
            t += gap;
            match op {
                Op::Issue(cmd) => {
                    let _ = chip.issue(cmd, t);
                }
                Op::Burst { bank, row, count } => {
                    if let Ok(end) = chip.activate_burst(bank, row, count, timing.tras, t) {
                        t = end + timing.trp;
                    }
                }
                Op::RefreshWindow => {
                    let _ = chip.refresh_window(t);
                }
                Op::SetTemperature(c) => chip.set_temperature(c),
                Op::Mark => chip.mark("fuzz-op"),
            }
        }
        chip.clear_sink();
        Recorded {
            trace: recorder.finish(profile, seed),
            metrics_snapshot: metrics.take_registry().to_json_lines(),
        }
    }};
}

#[test]
fn flat_and_oracle_runs_leave_identical_artifacts() {
    for (name, profile) in [
        ("small", ChipProfile::test_small()),
        ("coupled", ChipProfile::test_small_coupled()),
        ("ecc", ChipProfile::test_small().with_on_die_ecc()),
    ] {
        let seed = 0xD1FF ^ name.len() as u64;
        let flat: Recorded = record_run!(DramChip, &profile, seed);
        let oracle: Recorded = record_run!(RefChip, &profile, seed);

        assert_eq!(
            flat.trace.to_bytes(),
            oracle.trace.to_bytes(),
            "{name}: trace bytes diverged"
        );
        assert_eq!(
            flat.metrics_snapshot, oracle.metrics_snapshot,
            "{name}: metrics snapshots diverged"
        );

        // The oracle-recorded stream must verify bit-for-bit against the
        // flat chip (replay always runs on the production `DramChip`),
        // and the trusted fast path must reconstruct the same end state.
        let verified = replay_on_chip(&oracle.trace, &profile).expect("oracle trace verifies");
        let trusted =
            replay_on_chip_trusted(&oracle.trace, &profile).expect("trusted replay succeeds");
        assert_eq!(trusted.commands, verified.commands, "{name}");
        assert_eq!(trusted.bitflips, verified.bitflips, "{name}");
    }
}
