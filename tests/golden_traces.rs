//! Golden-trace regression suite.
//!
//! Checked-in binary traces (`tests/golden/*.trace`, one per small vendor
//! profile, recorded with `characterize record <profile> --seed 2024`)
//! pin the exact command stream, read data, and dossier digest of a full
//! characterization. Any change to the simulator physics, the probe
//! pipelines, or the trace codec that alters behavior bit-for-bit shows
//! up here as a replay divergence or digest mismatch — the simulated
//! equivalent of keeping measured silicon behavior under version control.

use dramscope::core::dossier::CharacterizeOptions;
use dramscope::core::Table;
use dramscope::core::{
    record_characterization, record_characterization_instrumented, replay_benchmark,
    replay_characterization,
};
use dramscope::sim::{ChipProfile, Time};
use dramscope::trace::{replay_on_chip, trace_metrics, IndexedTrace, Trace, TraceError};

/// The golden fixtures: three profiles with three distinct vendors,
/// geometries, and hidden configurations.
const GOLDEN: &[(&str, &[u8])] = &[
    (
        "test_small",
        include_bytes!("golden/test_small.trace") as &[u8],
    ),
    (
        "test_small_interleaved",
        include_bytes!("golden/test_small_interleaved.trace") as &[u8],
    ),
    (
        "test_small_coupled",
        include_bytes!("golden/test_small_coupled.trace") as &[u8],
    ),
];

/// The options the fixtures were recorded with (mirrors the CLI's
/// `record` defaults for the small profiles).
fn opts_for(name: &str) -> CharacterizeOptions {
    CharacterizeOptions {
        scan_rows: if name == "test_small_coupled" {
            257
        } else {
            129
        },
        with_swizzle: false,
        probe_range: (44, 60),
        retention_wait: Time::from_ms(120_000),
    }
}

fn profile_for(name: &str) -> ChipProfile {
    match name {
        "test_small" => ChipProfile::test_small(),
        "test_small_interleaved" => ChipProfile::test_small_interleaved(),
        "test_small_coupled" => ChipProfile::test_small_coupled(),
        other => panic!("unknown fixture {other}"),
    }
}

#[test]
fn golden_traces_decode_with_expected_identity() {
    for (name, bytes) in GOLDEN {
        let trace = Trace::from_bytes(bytes).expect("golden trace decodes");
        let profile = profile_for(name);
        assert_eq!(trace.header.profile_label, profile.label(), "{name}");
        assert_eq!(trace.header.seed, 2024, "{name}");
        assert_eq!(trace.header.dropped, 0, "{name}");
        assert!(trace.header.dossier_digest.is_some(), "{name}");
        assert!(
            trace.events.len() > 10_000,
            "{name}: {}",
            trace.events.len()
        );
        // Serialization is canonical: decode → encode is the identity.
        assert_eq!(trace.to_bytes(), *bytes, "{name}");
    }
}

#[test]
fn golden_traces_verified_replay_reproduces_dossier_digest() {
    for (name, bytes) in GOLDEN {
        let trace = Trace::from_bytes(bytes).expect("golden trace decodes");
        // Re-runs the full characterization with a verifier riding along;
        // internally asserts the command stream matches event-by-event
        // and the replayed dossier digest equals the recorded one.
        let (dossier, stats) = replay_characterization(&trace)
            .unwrap_or_else(|e| panic!("{name}: golden replay failed: {e}"));
        assert_eq!(
            Some(dossier.digest()),
            trace.header.dossier_digest,
            "{name}"
        );
        assert!(stats.commands() > 0, "{name}");
    }
}

#[test]
fn golden_traces_replay_bit_for_bit_on_bare_chips() {
    for (name, bytes) in GOLDEN {
        let trace = Trace::from_bytes(bytes).expect("golden trace decodes");
        let profile = profile_for(name);
        let stats = replay_on_chip(&trace, &profile)
            .unwrap_or_else(|e| panic!("{name}: bare-chip replay failed: {e}"));
        assert_eq!(stats.events, trace.events.len() as u64, "{name}");
        assert!(stats.reads_verified > 1_000, "{name}: {stats:?}");
        assert!(stats.commands > 5_000_000, "{name}: {stats:?}");
    }
}

#[test]
fn corrupt_and_truncated_golden_bytes_error_without_panicking() {
    let bytes = GOLDEN[0].1;
    // Sampled prefixes, including every early header boundary.
    let prefix_lens = (0..64).chain((64..bytes.len()).step_by(4099));
    for len in prefix_lens {
        let err = Trace::from_bytes(&bytes[..len]).expect_err("prefix must not decode");
        assert!(
            matches!(
                err,
                TraceError::TruncatedHeader { .. }
                    | TraceError::TruncatedEvents { .. }
                    | TraceError::Corrupt { .. }
            ),
            "prefix {len}: {err:?}"
        );
    }
    // Sampled single-byte corruptions: any Result is fine, panics are not.
    for i in (0..bytes.len()).step_by(997) {
        let mut mutated = bytes.to_vec();
        mutated[i] ^= 0xff;
        let _ = Trace::from_bytes(&mutated);
    }
    // Bad magic and version bumps are reported as such.
    let mut mutated = bytes.to_vec();
    mutated[0] = b'!';
    assert!(matches!(
        Trace::from_bytes(&mutated),
        Err(TraceError::BadMagic { .. })
    ));
    let mut mutated = bytes.to_vec();
    mutated[4] = 99;
    assert!(matches!(
        Trace::from_bytes(&mutated),
        Err(TraceError::UnsupportedVersion {
            found: 99,
            supported: 1
        })
    ));
}

/// The v2 indexed container of the `test_small` golden trace,
/// generated with `characterize index tests/golden/test_small.trace
/// --out tests/golden/test_small.v2.trace`. Pins the index encoding:
/// the payload prefix must stay byte-identical to the v1 fixture, and
/// the appended segment table must keep describing it exactly.
const GOLDEN_V2: &[u8] = include_bytes!("golden/test_small.v2.trace") as &[u8];

#[test]
fn golden_v2_container_wraps_the_v1_fixture_byte_identically() {
    let v1 = GOLDEN[0].1;
    // v2 = unchanged v1 payload + index section + trailer.
    assert!(GOLDEN_V2.len() > v1.len());
    assert_eq!(&GOLDEN_V2[..v1.len()], v1);

    // Re-encoding the decoded v1 fixture reproduces the fixture's
    // container bit-for-bit: the index encoder is canonical too.
    let trace = Trace::from_bytes(v1).expect("golden trace decodes");
    assert_eq!(trace.to_bytes_indexed(), GOLDEN_V2);

    // The container opens indexed and decodes (serially and in
    // parallel) to exactly the v1 fixture's events.
    let opened = IndexedTrace::from_bytes(GOLDEN_V2).expect("golden v2 opens");
    assert!(opened.is_indexed());
    assert!(opened.fallback().is_none());
    assert_eq!(opened.event_count(), trace.events.len() as u64);
    assert!(opened.segments().len() > 10, "{}", opened.segments().len());
    assert_eq!(opened.decode_all().expect("decodes"), trace);
    assert_eq!(opened.decode_parallel(0).expect("decodes"), trace);
    // Segment 0 is the structure phase and dominates the stream.
    assert_eq!(opened.segments()[0].label, "phase:structure");
    assert!(opened.segments()[0].events > 50_000);
}

#[test]
fn record_serialize_replay_round_trip_per_vendor_profile() {
    for (name, _) in GOLDEN {
        let profile = profile_for(name);
        let opts = opts_for(name);
        let (dossier, _, trace) =
            record_characterization(&profile, 7, opts).expect("record succeeds");

        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("round trip decodes");
        assert_eq!(decoded, trace, "{name}");

        let (replayed, _) = replay_characterization(&decoded)
            .unwrap_or_else(|e| panic!("{name}: replay failed: {e}"));
        assert_eq!(
            replayed.to_string(),
            dossier.to_string(),
            "{name}: replayed dossier must be byte-identical"
        );
        assert_eq!(replayed.digest(), dossier.digest(), "{name}");
    }
}

#[test]
fn golden_trace_throughput_feeds_fleet_reporting() {
    let trace = Trace::from_bytes(GOLDEN[0].1).expect("golden trace decodes");
    let stats = replay_benchmark(&trace, 2).expect("benchmark replays");
    assert_eq!(stats.phases.len(), 2);
    let mut table = Table::new(vec!["run", "wall_ms", "commands"]);
    for (i, p) in stats.phases.iter().enumerate() {
        assert_eq!(p.name, "replay");
        assert!(p.commands > 5_000_000, "{p:?}");
        table.row(vec![
            i.to_string(),
            format!("{:.2}", p.wall_ms),
            p.commands.to_string(),
        ]);
    }
    let csv = table.to_csv();
    assert!(csv.lines().count() == 3, "{csv}");
}

/// Metrics snapshot derived from `tests/golden/test_small.trace`,
/// generated with `characterize stats tests/golden/test_small.trace
/// --json`. Pins the telemetry vocabulary and the exact counts the
/// golden command stream produces.
const GOLDEN_METRICS: &str = include_str!("golden/test_small.metrics.json");

#[test]
fn golden_metrics_fixture_matches_trace_derived_snapshot() {
    let trace = Trace::from_bytes(GOLDEN[0].1).expect("golden trace decodes");
    let reg = trace_metrics(&trace);
    assert_eq!(
        reg.to_json_lines(),
        GOLDEN_METRICS,
        "regenerate with: characterize stats tests/golden/test_small.trace --json"
    );
}

#[test]
fn golden_metrics_trace_derivation_equals_live_instrumentation() {
    // The same snapshot must be reachable two independent ways: derived
    // offline from the recorded trace, and captured live by the metrics
    // sink riding along a fresh characterization. Phase/span markers and
    // command accounting must agree exactly.
    for (name, _) in GOLDEN {
        let profile = profile_for(name);
        let (_, _, trace, live) =
            record_characterization_instrumented(&profile, 2024, opts_for(name))
                .expect("record succeeds");
        let derived = trace_metrics(&trace);
        assert_eq!(
            live.to_json_lines(),
            derived.to_json_lines(),
            "{name}: live and trace-derived telemetry diverge"
        );
        assert!(live.sum_counters("span_count") > 0, "{name}");
        assert!(live.sum_counters("phase_count") > 0, "{name}");
    }
}
